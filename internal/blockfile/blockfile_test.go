package blockfile

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"blinkdb/internal/colstore"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// buildFixture assembles a table that exercises every encoding: a float
// column with NaN/-0/nulls, an int column with nulls, a bool column, a
// dict string column, a mixed-kind column (EncValue fallback), and a
// sorted low-cardinality column that RLE-compresses under the builder's
// hint. Blocks are small so several are produced, across 3 nodes.
func buildFixture(t testing.TB, rows int, layout storage.Layout) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "f", Kind: types.KindFloat},
		types.Column{Name: "i", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindBool},
		types.Column{Name: "s", Kind: types.KindString},
		types.Column{Name: "mix", Kind: types.KindString},
		types.Column{Name: "sorted", Kind: types.KindString},
	)
	tbl := storage.NewTable("fixture", schema)
	bld := storage.NewBuilderLayout(tbl, 64, 3, storage.InMemory, layout)
	bld.HintSortedColumns(5)
	for r := 0; r < rows; r++ {
		f := types.Float(float64(r) * 1.5)
		switch r % 17 {
		case 3:
			f = types.Null()
		case 5:
			f = types.Float(math.NaN())
		case 7:
			f = types.Float(math.Copysign(0, -1))
		}
		i := types.Int(int64(r * 3))
		if r%13 == 4 {
			i = types.Null()
		}
		mix := types.Value(types.Int(int64(r)))
		switch r % 5 {
		case 1:
			mix = types.Str(fmt.Sprintf("m%d", r%7))
		case 2:
			mix = types.Float(float64(r) / 3)
		case 3:
			mix = types.Null()
		}
		bld.Append(types.Row{
			f, i, types.Bool(r%2 == 0),
			types.Str(fmt.Sprintf("s%02d", r%23)),
			mix,
			types.Str(fmt.Sprintf("stratum%d", r/97)),
		}, storage.RowMeta{Rate: 1 / (1 + float64(r%9)), StratumFreq: int64(r % 11)})
	}
	return bld.Finish()
}

func writeFixture(t testing.TB, tbl *storage.Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fixture.seg")
	err := WriteSegment(path, func(w *Writer) error {
		w.PutMeta("note", []byte("fixture-meta"))
		return w.AddTable(tbl)
	})
	if err != nil {
		t.Fatalf("WriteSegment: %v", err)
	}
	return path
}

// valueEq is exact struct equality with floats compared by bit pattern,
// so NaN payloads (which the fixture deliberately contains, and which
// reflect.DeepEqual would treat as unequal to themselves) round-trip.
func valueEq(a, b types.Value) bool {
	return a.Kind == b.Kind && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func rowsEq(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !valueEq(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

func zonesEq(a, b []storage.Zone) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Valid != b[i].Valid || !valueEq(a[i].Min, b[i].Min) || !valueEq(a[i].Max, b[i].Max) {
			return false
		}
	}
	return true
}

// scanAll materializes every (row, meta) pair — the observable content
// of a table, shared by both layouts.
func scanAll(tbl *storage.Table) ([]types.Row, []storage.RowMeta) {
	var rows []types.Row
	var metas []storage.RowMeta
	tbl.Scan(func(r types.Row, m storage.RowMeta) bool {
		rows = append(rows, r.Clone())
		metas = append(metas, m)
		return true
	})
	return rows, metas
}

func assertTablesEqual(t *testing.T, want, got *storage.Table) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("name %q != %q", got.Name, want.Name)
	}
	if !reflect.DeepEqual(got.Schema.Columns, want.Schema.Columns) {
		t.Fatalf("schema %v != %v", got.Schema.Columns, want.Schema.Columns)
	}
	if got.NumRows() != want.NumRows() || got.Bytes() != want.Bytes() {
		t.Fatalf("totals (%d rows, %d bytes) != (%d rows, %d bytes)",
			got.NumRows(), got.Bytes(), want.NumRows(), want.Bytes())
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%d blocks != %d", len(got.Blocks), len(want.Blocks))
	}
	for i, wb := range want.Blocks {
		gb := got.Blocks[i]
		if gb.ID != wb.ID || gb.Node != wb.Node || gb.Place != wb.Place || gb.Bytes != wb.Bytes {
			t.Fatalf("block %d identity mismatch: %+v vs %+v", i, gb, wb)
		}
		if !zonesEq(gb.Zones, wb.Zones) {
			t.Fatalf("block %d zones mismatch", i)
		}
		if gb.IsColumnar() != wb.IsColumnar() {
			t.Fatalf("block %d layout mismatch", i)
		}
		if wb.IsColumnar() {
			for c := range wb.Col.Cols {
				if gb.Col.Cols[c].Enc != wb.Col.Cols[c].Enc {
					t.Fatalf("block %d col %d encoding %v != %v",
						i, c, gb.Col.Cols[c].Enc, wb.Col.Cols[c].Enc)
				}
				if gb.Col.Cols[c].NaNFree != wb.Col.Cols[c].NaNFree {
					t.Fatalf("block %d col %d NaNFree mismatch", i, c)
				}
			}
			if gb.Col.Uniform() != wb.Col.Uniform() {
				t.Fatalf("block %d uniformity mismatch", i)
			}
		}
	}
	wantRows, wantMeta := scanAll(want)
	gotRows, gotMeta := scanAll(got)
	if !rowsEq(gotRows, wantRows) {
		t.Fatalf("scanned rows differ")
	}
	if !reflect.DeepEqual(gotMeta, wantMeta) {
		t.Fatalf("scanned row metadata differs")
	}
}

// TestRoundTrip pins build → persist → load equivalence for every
// encoding, both block layouts, and both load paths (mmap, ReadFile).
func TestRoundTrip(t *testing.T) {
	for _, layout := range []storage.Layout{storage.ColumnarLayout, storage.RowLayout} {
		for _, mode := range []string{"mmap", "readfile"} {
			t.Run(fmt.Sprintf("%s/%s", layout, mode), func(t *testing.T) {
				want := buildFixture(t, 500, layout)
				path := writeFixture(t, want)
				var seg *Segment
				var err error
				if mode == "mmap" {
					seg, err = Open(path)
				} else {
					seg, err = OpenReadFile(path)
				}
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				defer seg.Close()
				if mode == "readfile" && seg.Mapped() {
					t.Fatal("OpenReadFile produced a mapped segment")
				}
				if blob, ok := seg.Meta("note"); !ok || string(blob) != "fixture-meta" {
					t.Fatalf("meta blob lost: %q %v", blob, ok)
				}
				if seg.NumTables() != 1 || seg.TableName(0) != "fixture" {
					t.Fatalf("table index wrong: %d tables", seg.NumTables())
				}
				got, err := seg.Table(0)
				if err != nil {
					t.Fatalf("Table: %v", err)
				}
				assertTablesEqual(t, want, got)
			})
		}
	}
}

// TestEncodingCoverage asserts the fixture actually exercises every
// encoding, so the round-trip test can't silently lose coverage.
func TestEncodingCoverage(t *testing.T) {
	tbl := buildFixture(t, 500, storage.ColumnarLayout)
	seen := map[colstore.Encoding]bool{}
	withNulls := false
	for _, b := range tbl.Blocks {
		for c := range b.Col.Cols {
			seen[b.Col.Cols[c].Enc] = true
			if b.Col.Cols[c].Nulls != nil {
				withNulls = true
			}
		}
	}
	for _, enc := range []colstore.Encoding{
		colstore.EncFloat, colstore.EncInt, colstore.EncBool,
		colstore.EncDict, colstore.EncValue, colstore.EncRLE,
	} {
		if !seen[enc] {
			t.Errorf("fixture never produced encoding %v", enc)
		}
	}
	if !withNulls {
		t.Error("fixture never produced a null bitmap")
	}
}

// TestMultiTableSegment checks several tables share one segment (the
// sample-family layout: one table per delta).
func TestMultiTableSegment(t *testing.T) {
	t1 := buildFixture(t, 130, storage.ColumnarLayout)
	t2 := buildFixture(t, 67, storage.ColumnarLayout)
	t2.Name = "fixture2"
	path := filepath.Join(t.TempDir(), "multi.seg")
	err := WriteSegment(path, func(w *Writer) error {
		if err := w.AddTable(t1); err != nil {
			return err
		}
		return w.AddTable(t2)
	})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.NumTables() != 2 {
		t.Fatalf("want 2 tables, got %d", seg.NumTables())
	}
	g1, err := seg.Table(0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := seg.Table(1)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, t1, g1)
	assertTablesEqual(t, t2, g2)
}

// TestCorruption: every corrupted variant of a valid segment must fail
// with an error — wrong magic, wrong version, truncations at every
// prefix step, and a flipped byte at every stride-13 offset (section
// CRCs catch payload flips; footer/tail checks catch structural ones).
// None may panic and none may silently load wrong data.
func TestCorruption(t *testing.T) {
	want := buildFixture(t, 200, storage.ColumnarLayout)
	path := writeFixture(t, want)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, wantMeta := scanAll(want)

	// tryLoad loads a mutated file; a nil error means full materialized
	// content must still equal the original (flips in padding bytes are
	// legitimately undetectable and harmless).
	tryLoad := func(t *testing.T, mutated []byte) error {
		t.Helper()
		p := filepath.Join(t.TempDir(), "corrupt.seg")
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		seg, err := Open(p)
		if err != nil {
			return err
		}
		defer seg.Close()
		for i := 0; i < seg.NumTables(); i++ {
			tbl, err := seg.Table(i)
			if err != nil {
				return err
			}
			gotRows, gotMeta := scanAll(tbl)
			if !rowsEq(gotRows, wantRows) || !reflect.DeepEqual(gotMeta, wantMeta) {
				t.Fatal("corrupted segment loaded without error AND changed data")
			}
		}
		return nil
	}

	t.Run("wrong-magic", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] ^= 0xff
		if err := tryLoad(t, bad); err == nil {
			t.Fatal("wrong magic loaded")
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[4] = 0xee
		if err := tryLoad(t, bad); err == nil {
			t.Fatal("wrong version loaded")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(valid); n += 997 {
			if err := tryLoad(t, valid[:n]); err == nil {
				t.Fatalf("truncation to %d bytes loaded", n)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		detected := 0
		for off := 0; off < len(valid); off += 13 {
			bad := append([]byte(nil), valid...)
			bad[off] ^= 0x40
			if err := tryLoad(t, bad); err != nil {
				detected++
			}
		}
		if detected == 0 {
			t.Fatal("no bit flip was ever detected")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if err := tryLoad(t, nil); err == nil {
			t.Fatal("empty file loaded")
		}
	})
}

// TestViewAllocsIndependentOfRows pins the zero-per-value-decode
// contract: materializing a table whose columns are int/float (plus
// their null bitmaps and rate/freq arrays) allocates a constant number
// of objects regardless of row count, because payloads are slice views
// over the mapping.
func TestViewAllocsIndependentOfRows(t *testing.T) {
	build := func(rows int) string {
		schema := types.NewSchema(
			types.Column{Name: "f", Kind: types.KindFloat},
			types.Column{Name: "i", Kind: types.KindInt},
		)
		tbl := storage.NewTable("nums", schema)
		bld := storage.NewBuilderLayout(tbl, rows, 1, storage.InMemory, storage.ColumnarLayout)
		for r := 0; r < rows; r++ {
			bld.Append(types.Row{types.Float(float64(r)), types.Int(int64(r))},
				storage.RowMeta{Rate: 1 / (1 + float64(r%3)), StratumFreq: int64(r % 7)})
		}
		out := bld.Finish()
		path := filepath.Join(t.TempDir(), fmt.Sprintf("nums%d.seg", rows))
		if err := WriteSegment(path, func(w *Writer) error { return w.AddTable(out) }); err != nil {
			t.Fatal(err)
		}
		return path
	}
	allocs := func(path string) float64 {
		seg, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		return testing.AllocsPerRun(20, func() {
			if _, err := seg.Table(0); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocs(build(1_000))
	large := allocs(build(64_000))
	if small != large {
		t.Fatalf("per-value decode detected: %v allocs at 1k rows vs %v at 64k", small, large)
	}
}
