package blockfile

import (
	"bytes"
	"testing"
	"unsafe"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// FuzzSegmentLoad throws arbitrary bytes at the segment loader: parse,
// then materialize every table and meta blob of anything that parses.
// The contract under fuzzing is "error or correct, never panic" — every
// count, offset and section reference is attacker-controlled here.
// Seeds cover a valid single-table segment, a multi-table segment, and
// systematic mutations of both; testdata/fuzz holds the checked-in
// corpus.
func FuzzSegmentLoad(f *testing.F) {
	seed := func(rows int, layout storage.Layout, extraTable bool) []byte {
		tbl := buildFixture(f, rows, layout)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.PutMeta("m", []byte("blob"))
		if err := w.AddTable(tbl); err != nil {
			f.Fatal(err)
		}
		if extraTable {
			t2 := buildFixture(f, rows/2+1, layout)
			t2.Name = "second"
			if err := w.AddTable(t2); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := seed(90, storage.ColumnarLayout, false)
	f.Add(valid)
	f.Add(seed(40, storage.RowLayout, false))
	f.Add(seed(70, storage.ColumnarLayout, true))
	for off := 0; off < len(valid); off += len(valid)/17 + 1 {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x81
		f.Add(mut)
		f.Add(valid[:off])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		seg := &Segment{data: alignedCopy(data)}
		if err := seg.parse(); err != nil {
			return
		}
		for _, name := range []string{"m", "missing"} {
			seg.Meta(name)
		}
		for i := 0; i < seg.NumTables(); i++ {
			tbl, err := seg.Table(i)
			if err != nil {
				continue
			}
			// Drive the loaded table the way the executor would: full
			// scan with per-row metadata, exercising every decoded
			// column accessor (RLE run lookup, dict decode, bitmaps).
			tbl.Scan(func(_ types.Row, _ storage.RowMeta) bool { return true })
		}
	})
}

// alignedCopy mirrors readFileAligned for in-memory fuzz inputs.
func alignedCopy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]uint64, (len(b)+7)/8)
	dst := unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), len(b))
	copy(dst, b)
	return dst
}
