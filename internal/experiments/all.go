package experiments

// Experiment names one reproducible table/figure.
type Experiment struct {
	// Name is the CLI identifier ("6a", "7c", "table5", ...).
	Name string
	// Description is a one-line summary.
	Description string
	// Run produces the table.
	Run func(Config) (*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"6a", "sample families per storage budget (Conviva)", Figure6a},
		{"6b", "sample families per storage budget (TPC-H)", Figure6b},
		{"6c", "BlinkDB vs Hive/Shark response time", Figure6c},
		{"7a", "per-template error, 3 strategies (Conviva)", Figure7a},
		{"7b", "per-template error, 3 strategies (TPC-H)", Figure7b},
		{"7c", "error convergence on rare subgroups", Figure7c},
		{"8a", "actual vs requested response time", Figure8a},
		{"8b", "actual vs requested error bound", Figure8b},
		{"8c", "latency vs cluster size", Figure8c},
		{"table5", "stratified-sample storage overhead (Zipf)", Table5},
		{"table5mc", "Table 5 Monte-Carlo cross-check", Table5MonteCarlo},
		{"ola", "BlinkDB vs online aggregation", OnlineVsOffline},
		{"abl-affinity", "ablation: shard-affine locality & placement pricing", AblationAffinity},
		{"abl-delta", "ablation: §4.4 delta-block reuse", AblationDeltaReuse},
		{"abl-probe", "ablation: §4.1.1 probe-all vs subset", AblationProbeAll},
		{"abl-milp", "ablation: exact B&B vs greedy solver", AblationMILP},
		{"abl-skew", "ablation: tail-count vs kurtosis metric", AblationSkewMetric},
	}
}

// Find returns the named experiment, or nil.
func Find(name string) *Experiment {
	for _, e := range All() {
		if e.Name == name {
			ex := e
			return &ex
		}
	}
	return nil
}
