package experiments

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"blinkdb/internal/exec"
	"blinkdb/internal/stats"
	"blinkdb/internal/types"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSpace(tab.Rows[row][col]), "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %d,%d = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tab.String()
	for _, frag := range []string{"== demo ==", "long-column", "333", "note: a note"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestAllAndFind(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("experiments = %d", len(all))
	}
	for _, e := range all {
		if Find(e.Name) == nil {
			t.Errorf("Find(%q) failed", e.Name)
		}
	}
	if Find("nope") != nil {
		t.Error("Find(nope) should be nil")
	}
}

func TestFigure6aBudgetMonotone(t *testing.T) {
	tab, err := Figure6a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Totals per budget must respect the budget and grow with it.
	var totals []float64
	for _, r := range tab.Rows {
		if r[1] == "TOTAL" {
			v, _ := strconv.ParseFloat(r[2], 64)
			totals = append(totals, v)
		}
	}
	if len(totals) != 3 {
		t.Fatalf("want 3 budget totals, got %d", len(totals))
	}
	budgets := []float64{50, 100, 200}
	for i, tot := range totals {
		if tot > budgets[i]+0.5 {
			t.Errorf("budget %g%% exceeded: %g", budgets[i], tot)
		}
	}
	if totals[2] < totals[0] {
		t.Errorf("larger budget should not shrink storage: %v", totals)
	}
}

func TestFigure6bBudgets(t *testing.T) {
	tab, err := Figure6b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[1] == "TOTAL" {
			v, _ := strconv.ParseFloat(r[2], 64)
			if v > 201 {
				t.Errorf("total %g exceeds any budget", v)
			}
		}
	}
}

// TestFigure6cShape asserts the headline result: BlinkDB is at least an
// order of magnitude faster than every full-scan engine, and Hadoop is the
// slowest.
func TestFigure6cShape(t *testing.T) {
	tab, err := Figure6c(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, col := range []int{1, 2} {
		hadoop := cell(t, tab, 0, col)
		sharkDisk := cell(t, tab, 1, col)
		sharkMem := cell(t, tab, 2, col)
		blink := cell(t, tab, 3, col)
		if !(hadoop > sharkDisk && sharkDisk > sharkMem) {
			t.Errorf("engine ordering wrong in col %d: %g %g %g", col, hadoop, sharkDisk, sharkMem)
		}
		if blink*10 > sharkMem {
			t.Errorf("BlinkDB (%g) should be ≥10x faster than Shark cached (%g)", blink, sharkMem)
		}
	}
	// 7.5 TB slower than 2.5 TB for full scans.
	if cell(t, tab, 0, 2) <= cell(t, tab, 0, 1) {
		t.Error("bigger data should be slower for Hadoop")
	}
}

// TestFigure7cShape asserts the convergence claim: the multi-column
// strategy reaches tight bounds orders of magnitude faster than uniform.
func TestFigure7cShape(t *testing.T) {
	tab, err := Figure7c(Quick())
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1 // tightest target
	multi := cell(t, tab, last, 1)
	uniform := cell(t, tab, last, 3)
	if multi*10 > uniform {
		t.Errorf("multi-column (%g) should converge ≥10x faster than uniform (%g)", multi, uniform)
	}
}

// TestFigure8aBoundsRespected asserts max actual ≤ requested.
func TestFigure8aBoundsRespected(t *testing.T) {
	tab, err := Figure8a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		requested := cell(t, tab, i, 0)
		max := cell(t, tab, i, 3)
		if max > requested*1.05 {
			t.Errorf("requested %gs but max %gs", requested, max)
		}
	}
}

// TestFigure8bMeanUnderBound asserts the mean measured error stays at or
// below the requested bound.
func TestFigure8bMeanUnderBound(t *testing.T) {
	tab, err := Figure8b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		requested := cell(t, tab, i, 0)
		mean := cell(t, tab, i, 2)
		if mean > requested {
			t.Errorf("requested %g%% but mean measured %g%%", requested, mean)
		}
	}
}

// TestFigure8cShape asserts cached < disk, selective < bulk, and rough
// flatness beyond the smallest clusters.
func TestFigure8cShape(t *testing.T) {
	tab, err := Figure8c(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		selCache := cell(t, tab, i, 1)
		selDisk := cell(t, tab, i, 2)
		bulkCache := cell(t, tab, i, 3)
		bulkDisk := cell(t, tab, i, 4)
		if selCache > selDisk || bulkCache > bulkDisk {
			t.Errorf("row %d: cached should not be slower than disk", i)
		}
		if i >= 1 && selCache > bulkCache {
			t.Errorf("row %d: selective should not be slower than bulk at scale", i)
		}
	}
	// Flatness: latency at 100 nodes within 2x of latency at 20 nodes.
	for col := 1; col <= 4; col++ {
		l20 := cell(t, tab, 1, col)
		l100 := cell(t, tab, len(tab.Rows)-1, col)
		if l100 > 2*l20 || l20 > 2*l100 {
			t.Errorf("col %d not roughly flat: %g @20 vs %g @100", col, l20, l100)
		}
	}
}

// TestTable5MatchesPaper asserts every cell within tolerance of the paper.
func TestTable5MatchesPaper(t *testing.T) {
	tab, err := Table5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tab.Rows {
		for _, pair := range [][2]int{{1, 2}, {3, 4}, {5, 6}} {
			ours, _ := strconv.ParseFloat(r[pair[0]], 64)
			paper, _ := strconv.ParseFloat(r[pair[1]], 64)
			diff := ours - paper
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.25*paper+0.005 {
				t.Errorf("row %d (%s): ours %.4f vs paper %.4f", i, r[0], ours, paper)
			}
		}
	}
}

func TestTable5MonteCarloAgreement(t *testing.T) {
	tab, err := Table5MonteCarlo(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tab.Rows {
		an, _ := strconv.ParseFloat(r[2], 64)
		mc, _ := strconv.ParseFloat(r[3], 64)
		diff := an - mc
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.3*mc+0.01 {
			t.Errorf("row %d: analytic %.4f vs monte-carlo %.4f", i, an, mc)
		}
	}
}

// TestOnlineVsOffline asserts BlinkDB beats OLA at the tighter target.
func TestOnlineVsOffline(t *testing.T) {
	tab, err := OnlineVsOffline(Quick())
	if err != nil {
		t.Fatal(err)
	}
	blink := cell(t, tab, 0, 1)
	ola := cell(t, tab, 0, 2)
	if blink > ola {
		t.Errorf("BlinkDB (%g) should beat OLA (%g) at the tight target", blink, ola)
	}
}

func TestNewEnvErrors(t *testing.T) {
	if _, err := NewEnv(Quick(), "bogus", 1e12); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestMeasuredRelErr(t *testing.T) {
	mk := func(vals map[string]float64) *exec.Result {
		r := &exec.Result{}
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r.Groups = append(r.Groups, exec.Group{
				Key:       []types.Value{types.Str(k)},
				Estimates: []stats.Estimate{{Point: vals[k]}},
			})
		}
		return r
	}
	truth := mk(map[string]float64{"a": 100, "b": 200})
	// Perfect estimate: zero error.
	if got := MeasuredRelErr(mk(map[string]float64{"a": 100, "b": 200}), truth); got != 0 {
		t.Errorf("perfect estimate err = %g", got)
	}
	// 10% off on one of two groups: mean 5%.
	got := MeasuredRelErr(mk(map[string]float64{"a": 110, "b": 200}), truth)
	if got < 0.049 || got > 0.051 {
		t.Errorf("err = %g, want 0.05", got)
	}
	// Missing group counts as 100%: mean (1+0)/2.
	got = MeasuredRelErr(mk(map[string]float64{"a": 100}), truth)
	if got != 0.5 {
		t.Errorf("missing-group err = %g, want 0.5", got)
	}
	// Empty truth: zero.
	if got := MeasuredRelErr(mk(nil), &exec.Result{}); got != 0 {
		t.Errorf("empty truth err = %g", got)
	}
}

func TestAblationDeltaReuseNeverSlower(t *testing.T) {
	tab, err := AblationDeltaReuse(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		on := cell(t, tab, i, 1)
		off := cell(t, tab, i, 2)
		if on > off+1e-9 {
			t.Errorf("row %d: reuse ON (%g) slower than OFF (%g)", i, on, off)
		}
	}
}

// TestAblationAffinitySkewStrictlySlower pins the tentpole's acceptance
// criterion at the experiment layer: piling a family's blocks onto one
// node prices strictly higher than the striped layout for every family.
func TestAblationAffinitySkewStrictlySlower(t *testing.T) {
	tab, err := AblationAffinity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no families priced")
	}
	for i := range tab.Rows {
		striped := cell(t, tab, i, 3)
		oneNode := cell(t, tab, i, 4)
		if oneNode <= striped {
			t.Errorf("family %s: one-node placement (%g s) must be strictly slower than striped (%g s)",
				tab.Rows[i][0], oneNode, striped)
		}
	}
}

func TestAblationProbeAllRuns(t *testing.T) {
	tab, err := AblationProbeAll(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestAblationMILPExactNotWorse(t *testing.T) {
	tab, err := AblationMILP(Quick())
	if err != nil {
		t.Fatal(err)
	}
	exact := cell(t, tab, 0, 1)
	greedy := cell(t, tab, 1, 1)
	if greedy > exact+1e-9 {
		t.Errorf("greedy objective %g exceeds exact optimum %g", greedy, exact)
	}
}

func TestAblationSkewMetricRuns(t *testing.T) {
	tab, err := AblationSkewMetric(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] == "" {
			t.Errorf("metric %s chose no families", r[0])
		}
	}
}
