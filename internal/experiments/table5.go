package experiments

import (
	"fmt"
	"math/rand"

	"blinkdb/internal/zipf"
)

// paperTable5 holds the published values: storage fraction of S(φ,K) for
// a Zipf distribution with top frequency M = 10⁹, by exponent s and cap K.
var paperTable5 = []struct {
	s    float64
	k1e4 float64
	k1e5 float64
	k1e6 float64
}{
	{1.0, 0.49, 0.58, 0.69},
	{1.1, 0.25, 0.35, 0.48},
	{1.2, 0.13, 0.21, 0.32},
	{1.3, 0.07, 0.13, 0.22},
	{1.4, 0.04, 0.08, 0.15},
	{1.5, 0.024, 0.052, 0.114},
	{1.6, 0.015, 0.036, 0.087},
	{1.7, 0.010, 0.026, 0.069},
	{1.8, 0.007, 0.020, 0.055},
	{1.9, 0.005, 0.015, 0.045},
	{2.0, 0.0038, 0.012, 0.038},
}

// Table5 reproduces Table 5 (Appendix A): the storage required to maintain
// a stratified sample S(φ,K) as a fraction of the original table, for Zipf
// exponents s ∈ [1.0, 2.0] and caps K ∈ {10⁴, 10⁵, 10⁶}, with M = 10⁹.
// Both the analytic computation and the paper's value are shown.
func Table5(cfg Config) (*Table, error) {
	tab := &Table{
		Title: "Table 5: storage overhead of S(phi,K) under Zipf(s), M = 1e9",
		Header: []string{"s",
			"K=1e4 (ours)", "K=1e4 (paper)",
			"K=1e5 (ours)", "K=1e5 (paper)",
			"K=1e6 (ours)", "K=1e6 (paper)"},
	}
	const m = 1e9
	for _, row := range paperTable5 {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.1f", row.s),
			fmt.Sprintf("%.4f", zipf.StratifiedOverhead(row.s, m, 1e4)), fmt.Sprintf("%.4f", row.k1e4),
			fmt.Sprintf("%.4f", zipf.StratifiedOverhead(row.s, m, 1e5)), fmt.Sprintf("%.4f", row.k1e5),
			fmt.Sprintf("%.4f", zipf.StratifiedOverhead(row.s, m, 1e6)), fmt.Sprintf("%.4f", row.k1e6),
		})
	}
	tab.Notes = append(tab.Notes,
		"analytic evaluation of sum_r min(M/r^s, K) / sum_r M/r^s; §3.1's claim: for s=1.5 a family costs 2.4%/5.2%/11.4% of the table at K=1e4/1e5/1e6")
	return tab, nil
}

// Table5MonteCarlo cross-checks the analytic overhead against an actual
// stratified sample built over Zipf-drawn data (at reduced M for
// tractability), validating the closed form against the implementation.
func Table5MonteCarlo(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	tab := &Table{
		Title:  "Table 5 cross-check: analytic vs sampled overhead (scaled M)",
		Header: []string{"s", "K", "analytic", "monte-carlo"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const rows = 200000
	for _, s := range []float64{1.2, 1.5, 1.8} {
		for _, k := range []float64{50, 500} {
			// Draw Zipf ranks; empirical overhead = Σ min(freq, K)/rows.
			gen := zipf.NewGeneratorCDF(rng, s, 50000)
			freq := map[int]int{}
			maxF := 0
			for i := 0; i < rows; i++ {
				r := gen.Next()
				freq[r]++
				if freq[r] > maxF {
					maxF = freq[r]
				}
			}
			kept := 0.0
			for _, f := range freq {
				if float64(f) < k {
					kept += float64(f)
				} else {
					kept += k
				}
			}
			mc := kept / rows
			an := zipf.StratifiedOverhead(s, float64(maxF), k)
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%.1f", s),
				fmt.Sprintf("%.0f", k),
				fmt.Sprintf("%.4f", an),
				fmt.Sprintf("%.4f", mc),
			})
		}
	}
	tab.Notes = append(tab.Notes,
		"the analytic column uses the empirical max frequency as M; agreement validates the closed form against real sampled data")
	return tab, nil
}
