// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cluster:
//
//	Fig. 6(a)/(b)  sample families chosen per storage budget (Conviva, TPC-H)
//	Fig. 6(c)      BlinkDB vs Hive / Shark(±cache) response times
//	Fig. 7(a)/(b)  per-template error: multi-dim vs single-dim vs uniform
//	Fig. 7(c)      error convergence: time to reach an error target
//	Fig. 8(a)      actual vs requested response time
//	Fig. 8(b)      actual vs requested error bound
//	Fig. 8(c)      latency vs cluster size (selective/bulk × cached/disk)
//	Table 5        storage overhead of S(φ,K) under Zipf distributions
//
// Each driver returns a Table that renders as aligned text; cmd/blinkdb-bench
// prints them and bench_test.go wraps them as Go benchmarks. Absolute
// numbers come from the cluster simulator (latency) and real sample
// execution (error); EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"

	"blinkdb/internal/catalog"
	"blinkdb/internal/cluster"
	"blinkdb/internal/elp"
	"blinkdb/internal/exec"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/workload"
)

// Config sizes the experiment suite. The zero value gives the full run;
// Quick() gives a fast variant for tests.
type Config struct {
	// ConvivaRows is the synthetic Conviva table size (default 150000).
	ConvivaRows int
	// TPCHRows is the lineitem size (default 80000).
	TPCHRows int
	// Seed drives all randomness.
	Seed int64
	// Instances is the number of query instantiations per template in
	// error experiments (default 8).
	Instances int
	// Nodes in the simulated cluster (default 100).
	Nodes int
	// Workers sizes the executor's scan worker pool for every query the
	// experiments run (default GOMAXPROCS). Results are bit-identical for
	// any value, so experiment outputs don't depend on the host.
	Workers int
}

func (c Config) normalize() Config {
	if c.ConvivaRows <= 0 {
		c.ConvivaRows = 150000
	}
	if c.TPCHRows <= 0 {
		c.TPCHRows = 80000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Instances <= 0 {
		c.Instances = 8
	}
	if c.Nodes <= 0 {
		c.Nodes = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// TotalDatasetRows returns the Conviva + TPC-H row counts this config
// generates after defaulting — the denominator for coarse rows/s
// throughput metrics (cmd/blinkdb-bench's JSON snapshot).
func (c Config) TotalDatasetRows() int {
	c = c.normalize()
	return c.ConvivaRows + c.TPCHRows
}

// Quick returns a reduced configuration for fast test runs.
func Quick() Config {
	return Config{ConvivaRows: 30000, TPCHRows: 20000, Seed: 42, Instances: 3, Nodes: 100}
}

// Table is a rendered experiment result.
type Table struct {
	// Title names the figure/table being reproduced.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold the data, pre-formatted.
	Rows [][]string
	// Notes carry caveats (scaling substitutions etc.).
	Notes []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Strategy names the three sampling strategies of §6.3.
type Strategy string

// Strategies compared in Figs. 7(a)–(c).
const (
	MultiDim  Strategy = "multi-column"
	SingleDim Strategy = "single-column"
	Uniform   Strategy = "uniform"
)

// Env is a prepared dataset with catalogs for each sampling strategy and a
// simulated cluster, shared across experiments.
type Env struct {
	Cfg     Config
	Data    *workload.Dataset
	Clus    *cluster.Cluster
	Scale   float64 // logical bytes per physical byte
	K       int64
	Caps    []int64
	Budget  int64 // stratified storage budget (bytes) used for catalogs
	Catalog map[Strategy]*catalog.Catalog
	Plans   map[Strategy]*optimizer.Plan
}

// sampleLadder returns the cap parameters scaled to the dataset size: the
// paper uses K = 100,000 on 5.5B rows (≈ rows/55,000); at laptop scale we
// keep the same resolution structure with K ≈ rows/40.
func sampleLadder(rows int) (k int64, capRatio float64, resolutions int, minCap int64) {
	// K must sit well below head-stratum frequencies for stratification to
	// compress (the paper: K = 1e5 vs head frequencies of 1e8+); rows/200
	// keeps that ratio at laptop scale while leaving enough rows per
	// stratum for ~10% error floors.
	k = int64(rows / 200)
	if k < 64 {
		k = 64
	}
	return k, 2, 8, 2
}

// NewEnv builds the dataset, the 50%-budget catalogs for all three
// strategies, and the cluster. which is "conviva" or "tpch". targetBytes
// sets the pretend logical size (e.g. 17e12 for the 17 TB Conviva set).
func NewEnv(cfg Config, which string, targetBytes float64) (*Env, error) {
	cfg = cfg.normalize()
	build := func(rowsPerBlock int) (*workload.Dataset, error) {
		switch which {
		case "conviva":
			return workload.Conviva(workload.ConvivaConfig{
				Rows: cfg.ConvivaRows, Nodes: cfg.Nodes, Seed: cfg.Seed,
				Place: storage.OnDisk, RowsPerBlock: rowsPerBlock,
				Layout: storage.ColumnarLayout,
			}), nil
		case "tpch":
			return workload.TPCH(workload.TPCHConfig{
				Rows: cfg.TPCHRows, Nodes: cfg.Nodes, Seed: cfg.Seed,
				Place: storage.OnDisk, RowsPerBlock: rowsPerBlock,
				Layout: storage.ColumnarLayout,
			}), nil
		default:
			return nil, fmt.Errorf("experiments: unknown dataset %q", which)
		}
	}
	// First pass measures byte width; the second rebuilds with blocks
	// sized to ≈256 MB logical each.
	data, err := build(512)
	if err != nil {
		return nil, err
	}
	scale := targetBytes / float64(data.Table.Bytes())
	avgRow := float64(data.Table.Bytes()) / float64(data.Table.NumRows())
	blockRows := logicalBlockRows(scale, avgRow)
	data, err = build(blockRows)
	if err != nil {
		return nil, err
	}

	env := &Env{
		Cfg:     cfg,
		Data:    data,
		Clus:    cluster.New(cluster.PaperConfig().WithNodes(cfg.Nodes)),
		Scale:   scale,
		Catalog: map[Strategy]*catalog.Catalog{},
		Plans:   map[Strategy]*optimizer.Plan{},
	}
	k, ratio, res, minCap := sampleLadder(int(data.Table.NumRows()))
	env.K = k
	env.Caps = sample.GeometricCaps(k, ratio, res, minCap)
	env.Budget = data.Table.Bytes() / 2 // the paper's default 50% budget

	bc := sample.BuildConfig{
		RowsPerBlock: blockRows, Nodes: cfg.Nodes, Place: storage.InMemory, Seed: cfg.Seed,
		Layout: storage.ColumnarLayout,
	}
	optCfg := optimizer.Config{
		K: k, CapRatio: ratio, Resolutions: res, MinCap: minCap,
		BudgetBytes: env.Budget, ChurnFrac: -1, Build: bc,
		Workers: cfg.Workers,
	}

	// Multi-column (BlinkDB) and single-column (Babcock-style) catalogs.
	for _, st := range []Strategy{MultiDim, SingleDim} {
		c := optCfg
		if st == SingleDim {
			c.MaxColumns = 1
		}
		plan, err := optimizer.ChooseSamples(data.Table, data.OptimizerTemplates(), c)
		if err != nil {
			return nil, err
		}
		fams, err := optimizer.BuildFamilies(data.Table, plan, c, 0.2)
		if err != nil {
			return nil, err
		}
		cat := catalog.New()
		cat.Register(data.Table)
		for _, f := range fams {
			if err := cat.AddFamily(data.Table.Name, f); err != nil {
				return nil, err
			}
		}
		env.Catalog[st] = cat
		env.Plans[st] = plan
	}

	// Uniform-only catalog of the same total size (50% of the table).
	uni, err := sample.BuildUniform(data.Table,
		sample.GeometricCaps(data.Table.NumRows()/2, ratio, res, minCap), bc)
	if err != nil {
		return nil, err
	}
	cat := catalog.New()
	cat.Register(data.Table)
	if err := cat.AddFamily(data.Table.Name, uni); err != nil {
		return nil, err
	}
	env.Catalog[Uniform] = cat
	return env, nil
}

// Runtime returns an ELP runtime over the strategy's catalog.
func (e *Env) Runtime(st Strategy) *elp.Runtime {
	return elp.New(e.Catalog[st], e.Clus, elp.Options{
		Scale: e.Scale,
		// Probes run on cluster-memory-resident smallest samples; §4.1.1
		// treats them as "very fast". Pricing them at job overhead keeps
		// the probe economics of the paper's scale.
		ProbeOverheadOnly: true,
		Workers:           e.Cfg.Workers,
	})
}

// logicalBlockRows sizes physical blocks so that one block represents an
// HDFS-style 256 MB logical block at the experiment's scale. Fine-grained
// blocks are what make zone-map pruning and node striping behave the way
// the paper's small-files-on-HDFS layout does (§2.2.1).
func logicalBlockRows(scale, avgRowBytes float64) int {
	r := int(256e6 / (scale * avgRowBytes))
	if r < 2 {
		r = 2
	}
	if r > 4096 {
		r = 4096
	}
	return r
}

// GroundTruth runs the query exactly on the base table.
func (e *Env) GroundTruth(sql string) (*exec.Result, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := exec.Compile(q, e.Data.Table.Schema)
	if err != nil {
		return nil, err
	}
	return exec.RunParallel(plan, exec.FromTable(e.Data.Table), 0.95, e.Cfg.Workers), nil
}

// MeasuredRelErr compares an approximate result against ground truth:
// mean |est − truth| / |truth| over groups present in both, for the first
// aggregate. Groups missing from the estimate (subset error) count as
// full (1.0) error, which penalises lost subgroups the way §3.1 motivates.
func MeasuredRelErr(approx, truth *exec.Result) float64 {
	if len(truth.Groups) == 0 {
		return 0
	}
	est := map[string]float64{}
	for _, g := range approx.Groups {
		if len(g.Estimates) > 0 {
			est[g.KeyString()] = g.Estimates[0].Point
		}
	}
	sum, n := 0.0, 0
	for _, g := range truth.Groups {
		if len(g.Estimates) == 0 {
			continue
		}
		tv := g.Estimates[0].Point
		n++
		ev, ok := est[g.KeyString()]
		if !ok {
			sum += 1 // missing subgroup
			continue
		}
		if tv == 0 {
			continue
		}
		re := (ev - tv) / tv
		if re < 0 {
			re = -re
		}
		if re > 1 {
			re = 1
		}
		sum += re
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// drawQueries instantiates n queries from the dataset's weighted template
// mix with the given bound suffix.
func drawQueries(data *workload.Dataset, rng *rand.Rand, n int, suffix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = data.DrawTemplate(rng).Gen(rng, suffix)
	}
	return out
}
