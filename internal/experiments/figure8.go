package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"blinkdb/internal/cluster"
	"blinkdb/internal/sqlparser"
)

// Figure8a reproduces Fig. 8(a): actual versus requested response time. A
// pool of Conviva queries drawn from the template mix runs with time
// bounds from 2 to 10 seconds; for each bound the min/mean/max simulated
// response time is reported. BlinkDB must stay at or under the diagonal.
func Figure8a(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, "conviva", 17e12)
	if err != nil {
		return nil, err
	}
	rt := env.Runtime(MultiDim)
	rng := rand.New(rand.NewSource(cfg.Seed + 81))
	tab := &Table{
		Title:  "Figure 8(a): actual vs requested response time (s), 20-query Conviva pool",
		Header: []string{"requested (s)", "min", "mean", "max"},
	}
	for _, budget := range []float64{2, 3, 4, 5, 6, 7, 8, 9, 10} {
		suffix := fmt.Sprintf("WITHIN %g SECONDS", budget)
		queries := drawQueries(env.Data, rng, 20, suffix)
		min, max, sum, n := math.Inf(1), 0.0, 0.0, 0
		for _, src := range queries {
			q, err := sqlparser.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", src, err)
			}
			resp, err := rt.Run(q)
			if err != nil {
				return nil, err
			}
			l := resp.SimLatency
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
			sum += l
			n++
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f", budget),
			fmt.Sprintf("%.2f", min),
			fmt.Sprintf("%.2f", sum/float64(n)),
			fmt.Sprintf("%.2f", max),
		})
	}
	tab.Notes = append(tab.Notes,
		"paper: actual response times track the requested bound from below; max must not exceed requested")
	return tab, nil
}

// Figure8b reproduces Fig. 8(b): actual versus requested error bound. The
// same query pool runs with relative error bounds from 2% to 32%; the
// MEASURED error against exact ground truth is reported. Measured error
// should sit at or below the requested bound, approaching it as the bound
// loosens (smaller samples).
func Figure8b(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, "conviva", 17e12)
	if err != nil {
		return nil, err
	}
	rt := env.Runtime(MultiDim)
	tab := &Table{
		Title:  "Figure 8(b): actual vs requested error bound (%), 20-query Conviva pool",
		Header: []string{"requested err%", "min", "mean", "max"},
	}
	for _, bound := range []float64{0.02, 0.04, 0.08, 0.16, 0.32} {
		rng := rand.New(rand.NewSource(cfg.Seed + 82)) // same pool per bound
		suffix := fmt.Sprintf("ERROR WITHIN %g%% AT CONFIDENCE 95%%", bound*100)
		queries := drawQueries(env.Data, rng, 20, suffix)
		min, max, sum, n := math.Inf(1), 0.0, 0.0, 0
		for _, src := range queries {
			q, err := sqlparser.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", src, err)
			}
			resp, err := rt.Run(q)
			if err != nil {
				return nil, err
			}
			truth, err := env.GroundTruth(stripBounds(src, suffix))
			if err != nil {
				return nil, err
			}
			if len(truth.Groups) == 0 || truth.Groups[0].Estimates[0].Point == 0 {
				continue
			}
			e := MeasuredRelErr(resp.Result, truth)
			if e < min {
				min = e
			}
			if e > max {
				max = e
			}
			sum += e
			n++
		}
		if n == 0 {
			continue
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f", bound*100),
			fmt.Sprintf("%.2f", min*100),
			fmt.Sprintf("%.2f", 100*sum/float64(n)),
			fmt.Sprintf("%.2f", max*100),
		})
	}
	tab.Notes = append(tab.Notes,
		"paper: measured error is almost always at or below the requested bound, approaching it as the bound loosens")
	return tab, nil
}

// Figure8c reproduces Fig. 8(c): query latency as a function of cluster
// size for two workload suites — selective (input striped over a few
// machines) and bulk (input spread over the whole cluster) — each with
// samples fully cached or fully on disk. Each query operates on 100·n GB
// of base data (n = cluster size); BlinkDB reads samples of it.
func Figure8c(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	tab := &Table{
		Title: "Figure 8(c): query latency (s) vs cluster size",
		Header: []string{"nodes", "selective+cached", "selective+disk",
			"bulk+cached", "bulk+disk"},
	}
	for _, n := range []int{1, 20, 40, 60, 80, 100} {
		clus := cluster.New(cluster.PaperConfig().WithNodes(n))
		baseBytes := 100e9 * float64(n) // 100 GB per node of base data

		// Selective queries touch a small, roughly constant slice of the
		// data (highly selective WHERE), concentrated on a handful of
		// machines regardless of cluster size.
		selBytes := math.Min(4e9, baseBytes)
		selSpan := n
		if selSpan > 4 {
			selSpan = 4
		}
		// Bulk queries crunch a fixed fraction of the base data via the
		// largest samples, spread over every node; shuffle cost grows
		// with the data crunched.
		bulkBytes := baseBytes * 0.02

		row := []string{fmt.Sprintf("%d", n)}
		for _, w := range []cluster.Work{
			clus.SkewedWork(selBytes, 1, selBytes*0.01, 64e6, selSpan),
			clus.SkewedWork(selBytes, 0, selBytes*0.01, 64e6, selSpan),
			clus.UniformWork(bulkBytes, 1, bulkBytes*0.02, 256e6),
			clus.UniformWork(bulkBytes, 0, bulkBytes*0.02, 256e6),
		} {
			row = append(row, fmt.Sprintf("%.1f", clus.Latency(cluster.BlinkDBEngine, w)))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"paper: latencies stay roughly flat with cluster size (per-node share constant); cached < disk; selective < bulk; these bracket the min/max latency of any placement mix")
	return tab, nil
}
