package experiments

import (
	"fmt"

	"blinkdb/internal/baseline"
	"blinkdb/internal/cluster"
	"blinkdb/internal/exec"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
)

// Figure6a reproduces Fig. 6(a): the stratified sample families the
// optimizer selects on the Conviva workload for storage budgets of 50%,
// 100% and 200% of the table, with their cumulative storage costs.
func Figure6a(cfg Config) (*Table, error) {
	return figure6SampleFamilies(cfg, "conviva",
		"Figure 6(a): sample families selected per storage budget (Conviva)")
}

// Figure6b is Fig. 6(b): the same sweep on the TPC-H workload.
func Figure6b(cfg Config) (*Table, error) {
	return figure6SampleFamilies(cfg, "tpch",
		"Figure 6(b): sample families selected per storage budget (TPC-H)")
}

func figure6SampleFamilies(cfg Config, which, title string) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, which, 1e12)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:  title,
		Header: []string{"budget", "family", "size % of table"},
	}
	k, ratio, res, minCap := sampleLadder(int(env.Data.Table.NumRows()))
	for _, budget := range []float64{0.5, 1.0, 2.0} {
		c := optimizer.Config{
			K: k, CapRatio: ratio, Resolutions: res, MinCap: minCap,
			BudgetBytes: int64(float64(env.Data.Table.Bytes()) * budget),
			ChurnFrac:   -1,
			Build: sample.BuildConfig{
				RowsPerBlock: 256, Nodes: cfg.Nodes, Place: storage.InMemory, Seed: cfg.Seed,
				Layout: storage.ColumnarLayout,
			},
		}
		plan, err := optimizer.ChooseSamples(env.Data.Table, env.Data.OptimizerTemplates(), c)
		if err != nil {
			return nil, err
		}
		total := 0.0
		label := fmt.Sprintf("%d%%", int(budget*100))
		for _, ch := range plan.Chosen {
			pct := 100 * float64(ch.StorageBytes) / float64(env.Data.Table.Bytes())
			total += pct
			tab.Rows = append(tab.Rows, []string{label, ch.Phi.String(), fmt.Sprintf("%.1f", pct)})
			label = ""
		}
		tab.Rows = append(tab.Rows, []string{"", "TOTAL", fmt.Sprintf("%.1f", total)})
	}
	tab.Notes = append(tab.Notes,
		"paper picks e.g. [dt jointimems], [objectid jointimems] (Conviva) and [orderkey suppkey], [commitdt receiptdt] (TPC-H); exact sets depend on the synthetic skews but must grow with budget and favor skewed column sets")
	return tab, nil
}

// Figure6c reproduces Fig. 6(c): the response time of a simple filtered
// AVG + GROUP BY query on 2.5 TB and 7.5 TB of Conviva data under Hive on
// Hadoop, Shark without and with caching, and BlinkDB (bounded error).
func Figure6c(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	tab := &Table{
		Title:  "Figure 6(c): BlinkDB vs full-scan engines, log-scale response time (s)",
		Header: []string{"engine", "2.5 TB (s)", "7.5 TB (s)"},
	}

	// Full-scan engines: latency comes from the cluster model at the
	// logical data size; answers are exact by construction.
	clus := cluster.New(cluster.PaperConfig().WithNodes(cfg.Nodes))
	engines := []struct {
		prof cluster.EngineProfile
		mem  float64
	}{
		{cluster.HiveOnHadoop, 0},
		{cluster.SharkNoCache, 0},
		{cluster.SharkCached, 1},
	}
	sizes := []float64{2.5e12, 7.5e12}
	rows := map[string][]string{}
	order := []string{}
	for _, e := range engines {
		cells := []string{e.prof.Name}
		for _, sz := range sizes {
			w := clus.UniformWork(sz, e.mem, sz*0.01, 256e6)
			cells = append(cells, fmt.Sprintf("%.0f", clus.Latency(e.prof, w)))
		}
		rows[e.prof.Name] = cells
		order = append(order, e.prof.Name)
	}

	// BlinkDB: build the Conviva environment once per logical size and run
	// the paper's query with an error bound through the full ELP path.
	for i, sz := range sizes {
		env, err := NewEnv(cfg, "conviva", sz)
		if err != nil {
			return nil, err
		}
		rt := env.Runtime(MultiDim)
		// T4 is the heaviest template class (31.7% of the trace); its
		// column set [country endedflag] is a Fig. 6(a) family, so the
		// clustered sample answers it by reading one stratum.
		q, err := sqlparser.Parse(
			`SELECT AVG(sessiontimems) FROM sessions WHERE country = 'country02' AND endedflag = 0 ERROR WITHIN 20% AT CONFIDENCE 95%`)
		if err != nil {
			return nil, err
		}
		resp, err := rt.Run(q)
		if err != nil {
			return nil, err
		}
		if _, ok := rows["BlinkDB"]; !ok {
			rows["BlinkDB"] = []string{"BlinkDB (20% error)"}
			order = append(order, "BlinkDB")
		}
		rows["BlinkDB"] = append(rows["BlinkDB"], fmt.Sprintf("%.1f", resp.SimLatency))
		_ = i
	}
	for _, name := range order {
		tab.Rows = append(tab.Rows, rows[name])
	}
	tab.Notes = append(tab.Notes,
		"paper: Hive ~thousands of s, Shark cached ~112 s at 2.5 TB (spills at 7.5 TB), BlinkDB ~2 s",
		"the paper's query is 1% error per GROUP BY city key; at laptop-scale physical row counts (10^4x fewer rows than 5.5B) such bounds are unreachable, so the heaviest template (T4) with a 20% bound exercises the same path — the latency shape (orders-of-magnitude gap, cache spill at 7.5 TB) is the reproduced result")
	return tab, nil
}

// olaComparison is the §1 claim that BlinkDB's precomputed samples beat
// query-time (online) sampling by ~2×. Exposed as an extra experiment.
func olaComparison(cfg Config, target float64) (blink float64, ola float64, err error) {
	env, err := NewEnv(cfg, "conviva", 2.5e12)
	if err != nil {
		return 0, 0, err
	}
	sql := `SELECT AVG(sessiontimems) FROM sessions`
	q, err := sqlparser.Parse(sql + fmt.Sprintf(" ERROR WITHIN %d%% AT CONFIDENCE 95%%", int(target*100)))
	if err != nil {
		return 0, 0, err
	}
	resp, err := env.Runtime(MultiDim).Run(q)
	if err != nil {
		return 0, 0, err
	}
	plan, err := exec.Compile(q, env.Data.Table.Schema)
	if err != nil {
		return 0, 0, err
	}
	olaRes := baseline.OLA(env.Clus, env.Data.Table, plan, baseline.OLAConfig{
		TargetRelErr: target, Seed: cfg.Seed, Scale: env.Scale,
		Profile: cluster.SharkCached, MemFraction: 1,
	})
	return resp.SimLatency, olaRes.Latency, nil
}

// OnlineVsOffline renders the BlinkDB-vs-OLA comparison as a table.
func OnlineVsOffline(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	tab := &Table{
		Title:  "BlinkDB (offline samples) vs online aggregation, time to target error",
		Header: []string{"target error", "BlinkDB (s)", "OLA (s)", "speedup"},
	}
	for _, target := range []float64{0.10, 0.20} {
		b, o, err := olaComparison(cfg, target)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f%%", target*100),
			fmt.Sprintf("%.1f", b),
			fmt.Sprintf("%.1f", o),
			fmt.Sprintf("%.1fx", o/b),
		})
	}
	tab.Notes = append(tab.Notes,
		"paper §1: precomputed samples are ~2x faster than online sampling at query time; this run gives OLA the benefit of fully cached inputs (no random-I/O penalty in memory)")
	return tab, nil
}
