package experiments

import (
	"fmt"
	"time"

	"blinkdb/internal/cluster"
	"blinkdb/internal/elp"
	"blinkdb/internal/exec"
	"blinkdb/internal/milp"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
)

// AblationDeltaReuse quantifies §4.4's intermediate-data reuse: the same
// error-bounded queries run with and without delta-block reuse, comparing
// simulated latencies. Without reuse, upgrading from the probe resolution
// re-reads the blocks the probe already scanned.
func AblationDeltaReuse(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, "conviva", 17e12)
	if err != nil {
		return nil, err
	}
	on, off := true, false
	rtOn := elp.New(env.Catalog[MultiDim], env.Clus, elp.Options{
		Scale: env.Scale, ProbeOverheadOnly: true, DeltaReuse: &on, Workers: env.Cfg.Workers,
	})
	rtOff := elp.New(env.Catalog[MultiDim], env.Clus, elp.Options{
		Scale: env.Scale, ProbeOverheadOnly: true, DeltaReuse: &off, Workers: env.Cfg.Workers,
	})
	tab := &Table{
		Title:  "Ablation (§4.4): intermediate-data (delta block) reuse",
		Header: []string{"query", "reuse ON (s)", "reuse OFF (s)"},
	}
	queries := []string{
		`SELECT AVG(sessiontimems) FROM sessions WHERE country = 'country02' AND endedflag = 0 ERROR WITHIN 25%`,
		`SELECT COUNT(*) FROM sessions WHERE country = 'country01' AND endedflag = 1 ERROR WITHIN 20%`,
		`SELECT AVG(jointimems) FROM sessions WHERE objectid = 2 ERROR WITHIN 15%`,
	}
	for i, src := range queries {
		q, err := sqlparser.Parse(src)
		if err != nil {
			return nil, err
		}
		rOn, err := rtOn.Run(q)
		if err != nil {
			return nil, err
		}
		rOff, err := rtOff.Run(q)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("Q%d", i+1),
			fmt.Sprintf("%.2f", rOn.SimLatency),
			fmt.Sprintf("%.2f", rOff.SimLatency),
		})
	}
	tab.Notes = append(tab.Notes,
		"reuse must never be slower; the gap is the probe's share of the final read")
	return tab, nil
}

// AblationProbeAll compares §4.1.1's probe-all-families choice against
// probing only families sharing a column with the query (the alternative
// the paper argues against because of negative correlations).
func AblationProbeAll(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, "conviva", 17e12)
	if err != nil {
		return nil, err
	}
	all, subset := true, false
	rtAll := elp.New(env.Catalog[MultiDim], env.Clus, elp.Options{
		Scale: env.Scale, ProbeOverheadOnly: true, ProbeAll: &all, Workers: env.Cfg.Workers,
	})
	rtSub := elp.New(env.Catalog[MultiDim], env.Clus, elp.Options{
		Scale: env.Scale, ProbeOverheadOnly: true, ProbeAll: &subset, Workers: env.Cfg.Workers,
	})
	tab := &Table{
		Title:  "Ablation (§4.1.1): probe all families vs only column-sharing families",
		Header: []string{"query", "probe-all: family / err%", "subset: family / err%"},
	}
	queries := []string{
		// No covering family: φ = {dt, genre} shares no column with the
		// stratified families, so the subset strategy sees only uniform.
		`SELECT AVG(sessiontimems) FROM sessions WHERE dt = 20120310 AND genre = 'western' ERROR WITHIN 15%`,
		`SELECT COUNT(*) FROM sessions WHERE city = 'city001' AND genre = 'drama' ERROR WITHIN 15%`,
	}
	for i, src := range queries {
		q, err := sqlparser.Parse(src)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("Q%d", i+1)}
		for _, rt := range []*elp.Runtime{rtAll, rtSub} {
			resp, err := rt.Run(q)
			if err != nil {
				return nil, err
			}
			fam := "base"
			if !resp.Decisions[0].UsedBase {
				fam = resp.Decisions[0].View.Family.Phi.String()
				if resp.Decisions[0].View.Family.IsUniform() {
					fam = "uniform"
				}
			}
			truth, err := env.GroundTruth(srcWithoutBound(src))
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%s / %.1f%%", fam,
				100*MeasuredRelErr(resp.Result, truth)))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"probing every family lets the runtime discover correlations the column-sharing heuristic misses")
	return tab, nil
}

func srcWithoutBound(src string) string {
	if i := indexOf(src, " ERROR WITHIN"); i >= 0 {
		return src[:i]
	}
	return src
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// AblationAffinity quantifies the locality-aware cluster model: for each
// sample family of the Conviva catalog, the largest resolution's blocks
// are priced (a) as built — striped across the cluster — and (b) piled
// onto a single node. The striped layout pays a cross-node partial-merge
// fan-in but scans in parallel; the skewed layout merges locally but its
// straggler node bounds the scan, which must always cost more. The
// locality hit rate reports how much of each family's bytes the
// node-affine schedule reads locally.
func AblationAffinity(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, "conviva", 17e12)
	if err != nil {
		return nil, err
	}
	entry, err := env.Catalog[MultiDim].Lookup(env.Data.Table.Name)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:  "Ablation: shard-affine locality & placement pricing (largest resolution per family)",
		Header: []string{"family", "blocks", "locality hit", "striped (s)", "one-node (s)"},
	}
	// The exact pricing path the runtime uses for sample reads.
	price := func(blocks []*storage.Block) (float64, error) {
		return elp.PriceBlockRead(env.Clus, cluster.BlinkDBEngine, blocks,
			env.Scale, elp.DefaultShuffleFraction)
	}
	for _, f := range entry.Families {
		name := f.Label()
		blocks := f.Largest().Blocks()
		_, shards := exec.ScanShards(blocks)
		striped, err := price(blocks)
		if err != nil {
			return nil, err
		}
		skewed := make([]*storage.Block, len(blocks))
		for i, b := range blocks {
			cp := *b
			cp.Node = 0
			skewed[i] = &cp
		}
		oneNode, err := price(skewed)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			name,
			fmt.Sprintf("%d", len(blocks)),
			fmt.Sprintf("%.0f%%", 100*storage.LocalityHitRate(shards)),
			fmt.Sprintf("%.2f", striped),
			fmt.Sprintf("%.2f", oneNode),
		})
	}
	tab.Notes = append(tab.Notes,
		"one-node placement must always be slower: the straggler scan dwarfs the striped layout's merge fan-in")
	return tab, nil
}

// AblationMILP compares the exact branch-and-bound against the greedy
// fallback on the IDENTICAL §3.2.1 instance: objective achieved, storage
// used and solve time.
func AblationMILP(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, "conviva", 1e12)
	if err != nil {
		return nil, err
	}
	k, ratio, res, minCap := sampleLadder(int(env.Data.Table.NumRows()))
	optCfg := optimizer.Config{
		K: k, CapRatio: ratio, Resolutions: res, MinCap: minCap,
		BudgetBytes: env.Data.Table.Bytes() / 2, ChurnFrac: -1,
	}
	prob, _, err := optimizer.BuildMILP(env.Data.Table, env.Data.OptimizerTemplates(), optCfg)
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	exact, err := milp.Solve(prob)
	if err != nil {
		return nil, err
	}
	exactDur := time.Since(t0)

	t0 = time.Now()
	greedySol := milp.SolveGreedy(prob)
	greedyDur := time.Since(t0)

	tab := &Table{
		Title:  "Ablation (§3.2.2): exact branch-and-bound vs greedy solver (same instance)",
		Header: []string{"solver", "objective", "storage used (B)", "solve time"},
	}
	tab.Rows = append(tab.Rows, []string{
		"exact B&B", fmt.Sprintf("%.1f", exact.Objective),
		fmt.Sprintf("%.0f", exact.Cost), exactDur.Round(time.Millisecond).String(),
	})
	tab.Rows = append(tab.Rows, []string{
		"greedy", fmt.Sprintf("%.1f", greedySol.Objective),
		fmt.Sprintf("%.0f", greedySol.Cost), greedyDur.Round(time.Millisecond).String(),
	})
	tab.Notes = append(tab.Notes,
		"greedy can never beat the exact optimum; the paper solves up to 1e6-variable instances in ~6s with GLPK")
	return tab, nil
}

// AblationSkewMetric compares the paper's tail-count Δ against the
// kurtosis alternative: which column sets each metric selects.
func AblationSkewMetric(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, "conviva", 1e12)
	if err != nil {
		return nil, err
	}
	k, ratio, res, minCap := sampleLadder(int(env.Data.Table.NumRows()))
	base := optimizer.Config{
		K: k, CapRatio: ratio, Resolutions: res, MinCap: minCap,
		BudgetBytes: env.Data.Table.Bytes() / 2, ChurnFrac: -1,
	}
	tab := &Table{
		Title:  "Ablation (§3.2.1): non-uniformity metric — tail count vs kurtosis",
		Header: []string{"metric", "chosen families", "objective"},
	}
	for _, m := range []struct {
		name string
		fn   optimizer.SkewMetric
	}{
		{"tail count (paper)", optimizer.TailCount},
		{"kurtosis", optimizer.Kurtosis},
	} {
		c := base
		c.Skew = m.fn
		plan, err := optimizer.ChooseSamples(env.Data.Table, env.Data.OptimizerTemplates(), c)
		if err != nil {
			return nil, err
		}
		fams := ""
		for i, ch := range plan.Chosen {
			if i > 0 {
				fams += " "
			}
			fams += ch.Phi.String()
		}
		tab.Rows = append(tab.Rows, []string{m.name, fams, fmt.Sprintf("%.3g", plan.Objective)})
	}
	tab.Notes = append(tab.Notes,
		"objectives are not comparable across metrics (different units); the interesting output is whether the chosen column sets differ")
	return tab, nil
}
