package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"blinkdb/internal/sqlparser"
)

// Figure7a reproduces Fig. 7(a): average statistical error per query
// template when running each query with a fixed 10-second time budget
// over three equally-sized sample sets (multi-column stratified,
// single-column stratified, uniform) on the Conviva workload.
func Figure7a(cfg Config) (*Table, error) {
	return figure7Errors(cfg, "conviva", 2e12,
		"Figure 7(a): per-template statistical error @10s budget (Conviva)")
}

// Figure7b is Fig. 7(b): the same comparison on TPC-H.
func Figure7b(cfg Config) (*Table, error) {
	return figure7Errors(cfg, "tpch", 1e12,
		"Figure 7(b): per-template statistical error @10s budget (TPC-H)")
}

func figure7Errors(cfg Config, which string, bytes float64, title string) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, which, bytes)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title: title,
		Header: []string{"template", "weight",
			string(MultiDim) + " err%", string(SingleDim) + " err%", string(Uniform) + " err%"},
	}
	strategies := []Strategy{MultiDim, SingleDim, Uniform}
	for _, tpl := range env.Data.Templates {
		if tpl.Weight < 0.02 {
			continue // the paper reports the five/six heavy templates
		}
		row := []string{tpl.Name, fmt.Sprintf("%.1f%%", tpl.Weight*100)}
		for _, st := range strategies {
			avg, err := avgErrorForTemplate(env, st, tpl.Name, 10.0)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", avg*100))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"error = measured |estimate-truth|/truth vs exact execution, averaged over groups and instances; missing subgroups count as 100% error (subset error, §3.1)",
		"paper: multi-column wins on most templates; single-column occasionally wins on single-column templates; uniform is worst on skewed/rare-value templates",
		"logical size is scaled so the 10s budget admits a comparable FRACTION of the data as the paper's setup; absolute errors are larger than the paper's 1-10% because our physical tables have ~10^4x fewer rows — the ranking across strategies is the reproduced result")
	return tab, nil
}

// avgErrorForTemplate runs Instances random instantiations of a template
// under a time bound on one strategy's catalog and returns the mean
// measured relative error vs ground truth.
func avgErrorForTemplate(env *Env, st Strategy, tplName string, budget float64) (float64, error) {
	tpl := env.Data.Template(tplName)
	if tpl == nil {
		return 0, fmt.Errorf("experiments: unknown template %s", tplName)
	}
	rng := rand.New(rand.NewSource(env.Cfg.Seed + int64(len(tplName))))
	rt := env.Runtime(st)
	suffix := fmt.Sprintf("WITHIN %g SECONDS", budget)
	sum, n := 0.0, 0
	for i := 0; i < env.Cfg.Instances; i++ {
		src := tpl.Gen(rng, suffix)
		q, err := sqlparser.Parse(src)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", src, err)
		}
		resp, err := rt.Run(q)
		if err != nil {
			return 0, err
		}
		truth, err := env.GroundTruth(stripBounds(src, suffix))
		if err != nil {
			return 0, err
		}
		if len(truth.Groups) == 0 || truth.Groups[0].Estimates[0].Point == 0 {
			continue // degenerate instantiation (predicate matched nothing)
		}
		sum += MeasuredRelErr(resp.Result, truth)
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

func stripBounds(src, suffix string) string {
	if len(src) >= len(suffix) && src[len(src)-len(suffix):] == suffix {
		return src[:len(src)-len(suffix)]
	}
	return src
}

// Figure7c reproduces Fig. 7(c): the time needed to reach a target
// statistical error for the three strategies, on the Conviva rare-subgroup
// query (average session time for one ISP's customers, grouped by city).
// Smaller targets separate the strategies by orders of magnitude: the
// multi-column stratified family guarantees rows for the rare (asn, city)
// combinations, the uniform sample must grow enormous (here: fall back to
// the base table) to converge.
func Figure7c(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	env, err := NewEnv(cfg, "conviva", 17e12)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:  "Figure 7(c): time (s) to reach a target error, rare-subgroup query (Conviva)",
		Header: []string{"target err%", string(MultiDim), string(SingleDim), string(Uniform)},
	}
	// The paper's query targets a rare (ISP, city) subgroup. Our analog:
	// failed sessions of a mid-tail country — the (country, endedflag)
	// joint subgroup is rare enough that a uniform sample of the same
	// total size holds almost no rows of it, while the multi-column
	// stratified family on [country endedflag] caps — and therefore
	// GUARANTEES — its rows (§3.1's missing-subgroup argument).
	base := `SELECT AVG(sessiontimems) FROM sessions WHERE country = 'country20' AND endedflag = 0`
	for _, target := range []float64{0.32, 0.16, 0.08, 0.04, 0.02} {
		row := []string{fmt.Sprintf("%.0f", target*100)}
		for _, st := range []Strategy{MultiDim, SingleDim, Uniform} {
			sql := fmt.Sprintf("%s ERROR WITHIN %g%% AT CONFIDENCE 95%%", base, target*100)
			q, err := sqlparser.Parse(sql)
			if err != nil {
				return nil, err
			}
			resp, err := env.Runtime(st).Run(q)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", resp.SimLatency))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"a strategy whose samples cannot reach the target falls back to an exact base-table scan — the cliff in its column is the paper's orders-of-magnitude convergence gap",
		"at laptop scale the single-column and uniform cliffs nearly coincide (per-stratum caps leave too few subgroup rows for intermediate targets); in the paper the 1-D curve sits between BlinkDB and random")
	return tab, nil
}

// relErrFinite clamps infinities for display.
func relErrFinite(x float64) float64 {
	if math.IsInf(x, 1) {
		return 1
	}
	return x
}
