package blinkdb

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// persistQueries exercise both caches and several planning paths. They
// are chosen to produce NaN-free estimates so reflect.DeepEqual is a
// sound comparison.
var persistQueries = []string{
	`SELECT AVG(sessiontime) FROM sessions WHERE city = 'city1' ERROR WITHIN 20%`,
	`SELECT COUNT(*) FROM sessions WHERE os = 'OSX' ERROR WITHIN 20%`,
	`SELECT AVG(sessiontime) FROM sessions GROUP BY city WITHIN 2 SECONDS`,
	`SELECT SUM(sessiontime) FROM sessions WHERE city = 'city2' OR os = 'Linux' ERROR WITHIN 20%`,
	`SELECT COUNT(*) FROM sessions GROUP BY os`,
}

// bootEngine opens an engine over dataDir, loads the deterministic
// sessions table and runs CreateSamples — the full boot sequence a
// server would run. It returns the engine and the sample report.
func bootEngine(t testing.TB, dataDir string) (*Engine, *SampleReport) {
	t.Helper()
	eng := Open(Config{
		Nodes: 10, Workers: 2, Seed: 42, RowsPerBlock: 128,
		DataDir: dataDir,
	})
	load := eng.CreateTable("sessions",
		Col("city", String), Col("os", String), Col("sessiontime", Float))
	oses := []string{"Win7", "OSX", "Linux"}
	state := uint64(1)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := 0; i < 6000; i++ {
		city := fmt.Sprintf("city%d", next(1+i%40))
		if err := load.Append(city, oses[next(3)], float64(next(10000))/17.0); err != nil {
			t.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.CreateSamples("sessions", SampleOptions{
		BudgetFraction: 1.0,
		K:              500,
		Templates: []Template{
			{Columns: []string{"city"}, Weight: 0.7},
			{Columns: []string{"os"}, Weight: 0.3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, rep
}

// TestWarmBootSamplesLoad: a second boot over the same DataDir must
// load the persisted families instead of rebuilding, produce an
// identical sample report, and answer every query bit-identically to
// the engine that built them.
func TestWarmBootSamplesLoad(t *testing.T) {
	dir := t.TempDir()
	cold, coldRep := bootEngine(t, dir)
	warm, warmRep := bootEngine(t, dir)

	if notes := warm.PersistenceNotes(); len(notes) != 0 {
		t.Fatalf("warm boot fell back to cold paths: %v", notes)
	}
	if !reflect.DeepEqual(coldRep, warmRep) {
		t.Errorf("sample reports differ:\n cold %+v\n warm %+v", coldRep, warmRep)
	}
	for _, src := range persistQueries {
		want, err := cold.Query(src)
		if err != nil {
			t.Fatalf("%q cold: %v", src, err)
		}
		got, err := warm.Query(src)
		if err != nil {
			t.Fatalf("%q warm: %v", src, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%q: warm-boot answer differs\n cold %+v\n warm %+v", src, want, got)
		}
	}
}

// TestRestartBitIdentical is the tentpole acceptance test: an engine
// that snapshots its warm state, "dies", and boots again over the same
// DataDir must be indistinguishable from the engine that never
// restarted — every response DeepEqual, including simulated latencies
// and cache markers, with replayed queries served as result-cache hits
// and new constants as plan-cache hits.
func TestRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	twin, _ := bootEngine(t, dir)

	// Warm both caches (miss, then hit), keep the steady-state answers.
	for _, src := range persistQueries {
		if _, err := twin.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	steady := map[string]*Result{}
	for _, src := range persistQueries {
		res, err := twin.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.ResultCache != "hit" {
			t.Fatalf("%q: twin steady-state ResultCache = %q, want hit", src, res.ResultCache)
		}
		steady[src] = res
	}

	ewma := map[string]float64{"tmplA": 0.25, "tmplB": 1.5}
	if err := twin.SnapshotWarmup(WarmupState{AdmissionEWMA: ewma}); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh process boots over the same DataDir.
	restarted, _ := bootEngine(t, dir)
	rep, err := restarted.RestoreWarmup()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatalf("RestoreWarmup found nothing; notes: %v", restarted.PersistenceNotes())
	}
	if rep.EpochsRestored == 0 || rep.Plans == 0 || rep.Results == 0 {
		t.Fatalf("restored epochs=%d plans=%d results=%d; want all > 0 (notes: %v)",
			rep.EpochsRestored, rep.Plans, rep.Results, restarted.PersistenceNotes())
	}
	if !reflect.DeepEqual(rep.Warmup.AdmissionEWMA, ewma) {
		t.Errorf("admission EWMA did not round-trip: %v", rep.Warmup.AdmissionEWMA)
	}

	// Replayed queries: result-cache hits, bit-identical to the twin.
	for _, src := range persistQueries {
		got, err := restarted.Query(src)
		if err != nil {
			t.Fatalf("%q restarted: %v", src, err)
		}
		if got.ResultCache != "hit" {
			t.Errorf("%q restarted: ResultCache = %q, want hit", src, got.ResultCache)
		}
		if !reflect.DeepEqual(got, steady[src]) {
			t.Errorf("%q: restarted answer differs from twin\n twin %+v\n rest %+v",
				src, steady[src], got)
		}
	}

	// New constants on restored templates: plan-cache hits, identical
	// to the twin answering the same fresh queries.
	for _, src := range []string{
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'city7' ERROR WITHIN 20%`,
		`SELECT SUM(sessiontime) FROM sessions WHERE city = 'city9' OR os = 'Win7' ERROR WITHIN 20%`,
	} {
		want, err := twin.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restarted.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if got.PlanCache != "hit" {
			t.Errorf("%q restarted: PlanCache = %q, want hit", src, got.PlanCache)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: restarted new-constant answer differs\n twin %+v\n rest %+v",
				src, want, got)
		}
	}
}

// TestSnapshotDuringConcurrentQueries: SnapshotWarmup must be safe —
// and the snapshot usable — while queries are executing (run under
// -race in CI). Every concurrent query must still answer correctly.
func TestSnapshotDuringConcurrentQueries(t *testing.T) {
	dir := t.TempDir()
	eng, _ := bootEngine(t, dir)
	for _, src := range persistQueries {
		if _, err := eng.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := persistQueries[(g+i)%len(persistQueries)]
				if _, err := eng.Query(src); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		if err := eng.SnapshotWarmup(WarmupState{}); err != nil {
			t.Errorf("snapshot %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// The last snapshot taken under load must restore cleanly.
	restarted, _ := bootEngine(t, dir)
	rep, err := restarted.RestoreWarmup()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Plans == 0 {
		t.Fatalf("snapshot under load did not restore (rep=%+v, notes=%v)",
			rep, restarted.PersistenceNotes())
	}
	for _, src := range persistQueries {
		want, err := eng.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restarted.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: restored-under-load answer differs", src)
		}
	}
}

// TestStaleWarmupDropped: when the data under the snapshot changed (a
// sample refresh after the snapshot was taken), the restored engine
// must drop the warmup entries — stale → rebuild, never wrong.
func TestStaleWarmupDropped(t *testing.T) {
	dir := t.TempDir()
	eng, _ := bootEngine(t, dir)
	for _, src := range persistQueries {
		if _, err := eng.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.SnapshotWarmup(WarmupState{}); err != nil {
		t.Fatal(err)
	}
	// Refresh AFTER the snapshot: the persisted sample segments now
	// describe pre-refresh families, but the snapshot's fingerprint
	// covers the refreshed catalog — restore must refuse the epochs.
	if _, ok, err := eng.RefreshSamples("sessions"); err != nil || !ok {
		t.Fatalf("refresh: ok=%v err=%v", ok, err)
	}
	if err := eng.SnapshotWarmup(WarmupState{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one persisted family segment so the warm sample load
	// degrades too: the boot must fall back to a cold rebuild, whose
	// families cannot fingerprint-match the snapshot.
	segs, err := filepath.Glob(filepath.Join(dir, "samples", "sessions", "fam*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no persisted family segments: %v", err)
	}
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(segs[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	restarted, _ := bootEngine(t, dir)
	notes := restarted.PersistenceNotes()
	if len(notes) == 0 {
		t.Fatalf("corrupt segment loaded without a note")
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "rebuilding") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes lack a rebuild reason: %v", notes)
	}
	rep, err := restarted.RestoreWarmup()
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil && (rep.Plans != 0 || rep.Results != 0) {
		t.Errorf("stale warmup restored plans=%d results=%d; want 0", rep.Plans, rep.Results)
	}
	// The engine still answers — cold, correctly.
	for _, src := range persistQueries {
		if _, err := restarted.Query(src); err != nil {
			t.Errorf("%q after stale fallback: %v", src, err)
		}
	}
}

// TestCorruptWarmupFileColdBoots: truncations and bit flips of
// warmup.seg must degrade to a cold boot with a note — no panic, no
// restored garbage.
func TestCorruptWarmupFileColdBoots(t *testing.T) {
	dir := t.TempDir()
	eng, _ := bootEngine(t, dir)
	for _, src := range persistQueries {
		if _, err := eng.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.SnapshotWarmup(WarmupState{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "warmup.seg")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func() []byte) {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(), 0o644); err != nil {
				t.Fatal(err)
			}
			restarted, _ := bootEngine(t, dir)
			rep, err := restarted.RestoreWarmup()
			if err != nil {
				t.Fatalf("RestoreWarmup must fail soft: %v", err)
			}
			if rep != nil && (rep.Plans != 0 || rep.Results != 0) {
				t.Fatalf("corrupt warmup restored plans=%d results=%d", rep.Plans, rep.Results)
			}
			for _, src := range persistQueries[:2] {
				if _, err := restarted.Query(src); err != nil {
					t.Fatalf("%q after corrupt warmup: %v", src, err)
				}
			}
		})
	}
	check("truncated", func() []byte { return orig[:len(orig)/3] })
	check("bitflip-tail", func() []byte {
		mut := append([]byte(nil), orig...)
		mut[len(mut)-10] ^= 0x01
		return mut
	})
	check("bitflip-body", func() []byte {
		mut := append([]byte(nil), orig...)
		mut[len(mut)/2] ^= 0x80
		return mut
	})
	check("empty", func() []byte { return nil })
	check("wrong-magic", func() []byte {
		mut := append([]byte(nil), orig...)
		mut[0] ^= 0xFF
		return mut
	})
}
