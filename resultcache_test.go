package blinkdb

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestResultCacheEquivalenceEndToEnd is the public-API acceptance check
// of the result-cache tentpole: an engine with the result cache disabled
// (ResultCacheSize < 0) behaves exactly like the PR 4 pipeline — no
// result= markers anywhere — and the default engine returns the same
// answers — estimates, error bars, scan counters AND simulated latencies
// — on the executing miss and on every replayed hit.
func TestResultCacheEquivalenceEndToEnd(t *testing.T) {
	const rows = 30000
	base := Config{Scale: 1e4, Seed: 7, CacheTables: true, Workers: 1}

	off := base
	off.ResultCacheSize = -1
	engOff := demoEngineCfg(t, rows, off)
	engOn := demoEngineCfg(t, rows, base)

	for _, src := range affinityQueries {
		want, err := engOff.Query(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if want.ResultCache != "" {
			t.Fatalf("%q: disabled result cache must not annotate, got %q", src, want.ResultCache)
		}
		if strings.Contains(want.Explanation, "result=") {
			t.Fatalf("%q: disabled result cache leaked a marker into EXPLAIN: %q", src, want.Explanation)
		}
		for rep := 0; rep < 2; rep++ {
			got, err := engOn.Query(src)
			if err != nil {
				t.Fatalf("%q rep %d: %v", src, rep, err)
			}
			wantNote := "hit"
			if rep == 0 {
				wantNote = "miss"
			}
			if got.ResultCache != wantNote {
				t.Errorf("%q rep %d: ResultCache = %q, want %q", src, rep, got.ResultCache, wantNote)
			}
			if !strings.Contains(got.Explanation, "result="+wantNote) {
				t.Errorf("%q rep %d: EXPLAIN %q missing result=%s", src, rep, got.Explanation, wantNote)
			}
			// A result hit skips the plan pipeline: no plan-cache marker.
			if rep > 0 && got.PlanCache != "" {
				t.Errorf("%q rep %d: result hit leaked PlanCache %q", src, rep, got.PlanCache)
			}
			if !reflect.DeepEqual(stripPlanCache(want), stripPlanCache(got)) {
				t.Errorf("%q rep %d (%s): result-cached engine diverged from result-cache-off\nwant %+v\ngot  %+v",
					src, rep, wantNote, stripPlanCache(want), stripPlanCache(got))
			}
		}
	}
	s := engOn.Stats()
	if s.ResultCacheHits != int64(len(affinityQueries)) || s.ResultCacheMisses != int64(len(affinityQueries)) {
		t.Errorf("stats: %d hits / %d misses, want %d / %d",
			s.ResultCacheHits, s.ResultCacheMisses, len(affinityQueries), len(affinityQueries))
	}
	if hr := s.ResultCacheHitRate(); hr < 0.49 || hr > 0.51 {
		t.Errorf("hit rate = %.3f, want 0.5 (one hit per miss)", hr)
	}
	if off := engOff.Stats(); off.ResultCacheHits != 0 || off.ResultCacheMisses != 0 || off.ResultCacheShared != 0 {
		t.Errorf("disabled result cache counted outcomes: %+v", off)
	}
}

// TestResultCacheInvalidationOnRefresh: after RefreshSamples, a cached
// answer must re-execute — never serve a result computed from replaced
// samples.
func TestResultCacheInvalidationOnRefresh(t *testing.T) {
	eng := demoEngine(t, 20000)
	const src = `SELECT AVG(sessiontime) FROM sessions WHERE genre = 'western' ERROR WITHIN 20%`

	if _, err := eng.Query(src); err != nil {
		t.Fatal(err)
	}
	if res, _ := eng.Query(src); res.ResultCache != "hit" {
		t.Fatalf("warm query should hit the result cache, got %q", res.ResultCache)
	}
	if _, ok, err := eng.RefreshSamples("sessions"); err != nil || !ok {
		t.Fatalf("refresh: ok=%v err=%v", ok, err)
	}
	before := eng.Stats()
	res, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultCache != "miss" {
		t.Fatalf("post-refresh query served a stale answer: %q, want miss", res.ResultCache)
	}
	after := eng.Stats()
	if after.PlanExecs == before.PlanExecs {
		t.Error("post-refresh query must re-execute")
	}
	// And the re-executed answer is cached again.
	if res, _ := eng.Query(src); res.ResultCache != "hit" {
		t.Errorf("re-cached answer should hit, got %q", res.ResultCache)
	}
}

// TestResultCacheInvalidationOnMaintain: a forced Maintain pass that
// rebuilds families invalidates cached answers the same way.
func TestResultCacheInvalidationOnMaintain(t *testing.T) {
	eng := demoEngine(t, 20000)
	const src = `SELECT AVG(sessiontime) FROM sessions WHERE genre = 'western' ERROR WITHIN 20%`
	if _, err := eng.Query(src); err != nil {
		t.Fatal(err)
	}
	if res, _ := eng.Query(src); res.ResultCache != "hit" {
		t.Fatal("warm query should hit the result cache")
	}
	rep, err := eng.Maintain("sessions", MaintainOptions{
		Templates: []Template{{Columns: []string{"genre"}, Weight: 1}},
		Force:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("forced maintain should re-solve: %+v", rep)
	}
	res, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultCache != "miss" {
		t.Errorf("post-maintain query served a stale answer: %q, want miss", res.ResultCache)
	}
}

// TestResultCacheTTLExpiryEndToEnd: Config.ResultCacheTTL bounds answer
// age through the public API. The hit direction is covered by the
// default (no-TTL) engines elsewhere; here a tiny TTL plus a sleep pins
// the expiry direction without any timing-sensitive hit assertion.
func TestResultCacheTTLExpiryEndToEnd(t *testing.T) {
	cfg := Config{Scale: 1e4, Seed: 7, CacheTables: true, ResultCacheTTL: time.Millisecond}
	eng := demoEngineCfg(t, 10000, cfg)
	const src = `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 20%`
	if _, err := eng.Query(src); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	res, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultCache != "miss" {
		t.Fatalf("expired answer served: %q, want miss", res.ResultCache)
	}
	if s := eng.Stats(); s.ResultCacheMisses != 2 || s.ResultCacheHits != 0 {
		t.Errorf("stats = %d hits / %d misses, want 0 / 2", s.ResultCacheHits, s.ResultCacheMisses)
	}
}

// TestResultCacheSingleflightEndToEnd is the engine-level -race check of
// the singleflight contract: 8 goroutines racing ONE cold query must
// trigger exactly one execution (Stats-counted) and all receive equal
// answers. Run under -race in CI.
func TestResultCacheSingleflightEndToEnd(t *testing.T) {
	eng := demoEngine(t, 20000)
	// A twin engine (identical deterministic dataset) measures the
	// executor cost of one serial cold run of the same query.
	twin := demoEngine(t, 20000)
	const src = `SELECT AVG(sessiontime) FROM sessions WHERE genre = 'western' GROUP BY os ERROR WITHIN 20%`
	want, err := twin.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	oneCold := twin.Stats()

	const goroutines = 8
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			results[g], errs[g] = eng.Query(src)
		}(g)
	}
	close(start)
	wg.Wait()

	notes := map[string]int{}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		notes[results[g].ResultCache]++
		if !reflect.DeepEqual(stripPlanCache(want), stripPlanCache(results[g])) {
			t.Errorf("goroutine %d (%s): answer diverged from the serial cold run",
				g, results[g].ResultCache)
		}
	}
	s := eng.Stats()
	if s.ResultCacheMisses != 1 {
		t.Errorf("ResultCacheMisses = %d, want 1; notes %v", s.ResultCacheMisses, notes)
	}
	if s.ResultCacheHits+s.ResultCacheShared != goroutines-1 {
		t.Errorf("hits+shared = %d+%d, want %d", s.ResultCacheHits, s.ResultCacheShared, goroutines-1)
	}
	if s.Prepares != oneCold.Prepares || s.PlanExecs != oneCold.PlanExecs || s.ProbeExecs != oneCold.ProbeExecs {
		t.Errorf("concurrent cold key cost %d prepares / %d plan execs / %d probes; one serial run costs %d / %d / %d (notes %v)",
			s.Prepares, s.PlanExecs, s.ProbeExecs, oneCold.Prepares, oneCold.PlanExecs, oneCold.ProbeExecs, notes)
	}
}
