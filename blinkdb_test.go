package blinkdb

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// demoEngine loads a skewed sessions table and builds samples, with the
// default worker pool (Workers: 0 → CoresPerNode).
func demoEngine(t testing.TB, rows int) *Engine {
	t.Helper()
	return demoEngineWorkers(t, rows, 0)
}

func TestEndToEndExactQuery(t *testing.T) {
	eng := demoEngine(t, 20000)
	res, err := eng.Query(`SELECT COUNT(*) FROM sessions`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Cells[0].Value != 20000 {
		t.Fatalf("count = %+v", res.Rows)
	}
	if !res.Rows[0].Cells[0].Exact {
		t.Error("unbounded query should be exact")
	}
	if res.SampleDescription != "base table" {
		t.Errorf("sample = %q", res.SampleDescription)
	}
}

func TestEndToEndErrorBoundedQuery(t *testing.T) {
	eng := demoEngine(t, 50000)
	res, err := eng.Query(
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 5% AT CONFIDENCE 95%`)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := eng.Query(`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY'`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows[0].Cells[0].Value
	want := exact.Rows[0].Cells[0].Value
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("estimate %.2f vs exact %.2f", got, want)
	}
	if res.MaxRelErr() > 0.08 {
		t.Errorf("reported error %.3f above bound", res.MaxRelErr())
	}
	if !strings.Contains(res.SampleDescription, "S(") {
		t.Errorf("should answer from a stratified sample, got %q", res.SampleDescription)
	}
	if res.Explanation == "" {
		t.Error("explanation empty")
	}
}

func TestEndToEndTimeBoundedQuery(t *testing.T) {
	eng := demoEngine(t, 50000)
	res, err := eng.Query(
		`SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE FROM sessions WHERE city = 'SF' GROUP BY os WITHIN 2 SECONDS`)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimLatencySeconds > 2.1 {
		t.Errorf("latency %.2f exceeds bound", res.SimLatencySeconds)
	}
	if len(res.Rows) != 3 {
		t.Errorf("groups = %d, want 3 OSes", len(res.Rows))
	}
}

// demoEngineWorkers is demoEngine with an explicit executor pool size.
func demoEngineWorkers(t testing.TB, rows, workers int) *Engine {
	t.Helper()
	return demoEngineLayout(t, rows, workers, LayoutColumnar)
}

// demoEngineLayout is demoEngineWorkers with an explicit block layout.
func demoEngineLayout(t testing.TB, rows, workers int, layout Layout) *Engine {
	t.Helper()
	return demoEngineCfg(t, rows, Config{Scale: 1e4, Seed: 7, CacheTables: true, Workers: workers, Layout: layout})
}

// demoEngineCfg loads the standard demo dataset into an engine with an
// arbitrary configuration (affinity/layout/worker sweeps).
func demoEngineCfg(t testing.TB, rows int, cfg Config) *Engine {
	t.Helper()
	eng := Open(cfg)
	load := eng.CreateTable("sessions",
		Col("city", String),
		Col("os", String),
		Col("genre", String),
		Col("sessiontime", Float),
		Col("ended", Bool),
	)
	rng := rand.New(rand.NewSource(3))
	cities := []string{"NY", "SF", "LA", "Austin", "Boise", "Fargo"}
	weights := []float64{0.5, 0.25, 0.15, 0.06, 0.03, 0.01}
	oses := []string{"Win7", "OSX", "Linux"}
	genres := []string{"western", "drama"}
	pick := func() string {
		u := rng.Float64()
		for i, w := range weights {
			u -= w
			if u <= 0 {
				return cities[i]
			}
		}
		return cities[len(cities)-1]
	}
	for i := 0; i < rows; i++ {
		if err := load.Append(
			pick(), oses[rng.Intn(3)], genres[rng.Intn(2)],
			rng.ExpFloat64()*100, rng.Float64() < 0.9,
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateSamples("sessions", SampleOptions{
		BudgetFraction: 0.5,
		K:              2000,
		Templates: []Template{
			{Columns: []string{"city"}, Weight: 0.7},
			{Columns: []string{"os"}, Weight: 0.3},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestWorkersEquivalenceEndToEnd pins the public-API contract of the
// parallel executor: two engines differing only in Config.Workers return
// bit-identical query results — same groups, same points, same error
// bars, same plan decisions — for exact, error-bounded, time-bounded,
// grouped and disjunctive queries.
func TestWorkersEquivalenceEndToEnd(t *testing.T) {
	seq := demoEngineWorkers(t, 30000, 1)
	par := demoEngineWorkers(t, 30000, 8)
	queries := []string{
		`SELECT COUNT(*) FROM sessions`,
		`SELECT AVG(sessiontime), MEDIAN(sessiontime) FROM sessions GROUP BY city`,
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 5% AT CONFIDENCE 95%`,
		`SELECT COUNT(*) FROM sessions WHERE city = 'SF' GROUP BY os WITHIN 2 SECONDS`,
		`SELECT SUM(sessiontime) FROM sessions WHERE city = 'NY' OR os = 'Linux' ERROR WITHIN 10%`,
		`SELECT COUNT(*) FROM sessions WHERE city = 'Atlantis'`,
	}
	for _, src := range queries {
		a, err := seq.Query(src)
		if err != nil {
			t.Fatalf("%q (workers=1): %v", src, err)
		}
		b, err := par.Query(src)
		if err != nil {
			t.Fatalf("%q (workers=8): %v", src, err)
		}
		if a.SampleDescription != b.SampleDescription {
			t.Errorf("%q: plan diverged: %q vs %q", src, a.SampleDescription, b.SampleDescription)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Errorf("%q: results diverged across worker counts\nworkers=1: %+v\nworkers=8: %+v",
				src, a.Rows, b.Rows)
		}
		if a.RowsScanned != b.RowsScanned || a.RowsMatched != b.RowsMatched {
			t.Errorf("%q: scan counters diverged: %d/%d vs %d/%d",
				src, a.RowsScanned, a.RowsMatched, b.RowsScanned, b.RowsMatched)
		}
	}
}

func TestRareGroupPresent(t *testing.T) {
	eng := demoEngine(t, 50000)
	res, err := eng.Query(
		`SELECT COUNT(*) FROM sessions GROUP BY city ERROR WITHIN 20%`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rows {
		if r.Group == "Fargo" {
			found = true
		}
	}
	if !found {
		t.Error("stratified sampling must not lose the rare Fargo group")
	}
}

func TestLoaderErrors(t *testing.T) {
	eng := Open(Config{})
	load := eng.CreateTable("t", Col("a", Int))
	if err := load.Append(1, 2); err == nil {
		t.Error("arity mismatch should error")
	}
	// Error is sticky.
	if err := load.Append(1); err == nil {
		t.Error("loader error should be sticky")
	}
	if err := load.Close(); err == nil {
		t.Error("Close should surface the sticky error")
	}

	load2 := eng.CreateTable("t2", Col("a", Int))
	if err := load2.Append(struct{}{}); err == nil {
		t.Error("unsupported type should error")
	}
}

func TestValueConversions(t *testing.T) {
	eng := Open(Config{})
	load := eng.CreateTable("conv",
		Col("i", Int), Col("f", Float), Col("s", String), Col("b", Bool))
	if err := load.Append(int32(1), float32(2.5), "x", true); err != nil {
		t.Fatal(err)
	}
	if err := load.Append(int64(2), 3.5, "y", false); err != nil {
		t.Fatal(err)
	}
	if err := load.Append(nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := load.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := eng.TableRows("conv")
	if err != nil || n != 3 {
		t.Errorf("rows = %d, err = %v", n, err)
	}
}

func TestCreateSamplesValidation(t *testing.T) {
	eng := Open(Config{})
	if _, err := eng.CreateSamples("nope", SampleOptions{}); err == nil {
		t.Error("unknown table should error")
	}
	load := eng.CreateTable("t", Col("a", Int))
	load.Append(1)
	load.Close()
	if _, err := eng.CreateSamples("t", SampleOptions{}); err == nil {
		t.Error("missing templates should error")
	}
}

func TestSampleReportBudget(t *testing.T) {
	eng := demoEngine(t, 20000)
	// demoEngine already created samples; re-create with a tight budget.
	rep, err := eng.CreateSamples("sessions", SampleOptions{
		BudgetFraction: 0.25,
		K:              500,
		Templates: []Template{
			{Columns: []string{"city"}, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var stratifiedBytes int64
	hasUniform := false
	for _, f := range rep.Families {
		if len(f.Columns) == 0 {
			hasUniform = true
			continue
		}
		stratifiedBytes += f.StorageBytes
	}
	if stratifiedBytes > rep.BudgetBytes {
		t.Errorf("stratified bytes %d exceed budget %d", stratifiedBytes, rep.BudgetBytes)
	}
	if !hasUniform {
		t.Error("uniform family always built")
	}
}

func TestQueryErrors(t *testing.T) {
	eng := demoEngine(t, 1000)
	for _, q := range []string{
		`SELECT`, // parse error
		`SELECT COUNT(*) FROM missing`,
		`SELECT COUNT(*) FROM sessions WHERE bogus = 1`,
	} {
		if _, err := eng.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestTablesAndRefresh(t *testing.T) {
	eng := demoEngine(t, 5000)
	if got := eng.Tables(); len(got) != 1 || got[0] != "sessions" {
		t.Errorf("Tables = %v", got)
	}
	cols, ok, err := eng.RefreshSamples("sessions")
	if err != nil || !ok {
		t.Fatalf("refresh: ok=%v err=%v", ok, err)
	}
	_ = cols
	if _, _, err := eng.RefreshSamples("missing"); err == nil {
		t.Error("unknown table refresh should error")
	}
}

func TestDisjunctiveQueryEndToEnd(t *testing.T) {
	eng := demoEngine(t, 30000)
	res, err := eng.Query(
		`SELECT COUNT(*) FROM sessions WHERE city = 'NY' OR os = 'OSX' ERROR WITHIN 10%`)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := eng.Query(`SELECT COUNT(*) FROM sessions WHERE city = 'NY' OR os = 'OSX'`)
	got := res.Rows[0].Cells[0].Value
	want := exact.Rows[0].Cells[0].Value
	// Disjunct merging over near-overlapping predicates is approximate;
	// the paper assumes near-disjoint template predicates. Allow 40%.
	if math.Abs(got-want)/want > 0.4 {
		t.Errorf("disjunctive estimate %.0f vs exact %.0f", got, want)
	}
}

func BenchmarkQueryErrorBounded(b *testing.B) {
	eng := demoEngine(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(
			`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJoinThroughPublicAPI(t *testing.T) {
	eng := demoEngine(t, 30000)
	// Dimension table: os → vendor (fits trivially in memory, §2.1).
	dim := eng.CreateTable("vendors", Col("os", String), Col("vendor", String))
	for _, r := range [][2]string{
		{"Win7", "Microsoft"}, {"OSX", "Apple"}, {"Linux", "Community"},
	} {
		if err := dim.Append(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := dim.Close(); err != nil {
		t.Fatal(err)
	}

	exact, err := eng.Query(
		`SELECT COUNT(*) FROM sessions JOIN vendors ON os = os GROUP BY vendor`)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Rows) != 3 {
		t.Fatalf("vendors = %d", len(exact.Rows))
	}
	approx, err := eng.Query(
		`SELECT COUNT(*) FROM sessions JOIN vendors ON os = os GROUP BY vendor ERROR WITHIN 15%`)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range approx.Rows {
		want := exact.Rows[i].Cells[0].Value
		got := row.Cells[0].Value
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("%s: %g vs exact %g", row.Group, got, want)
		}
	}
}

func TestMaintainEndToEnd(t *testing.T) {
	eng := demoEngine(t, 20000)
	tpl := []Template{
		{Columns: []string{"city"}, Weight: 0.7},
		{Columns: []string{"os"}, Weight: 0.3},
	}
	// First pass establishes a baseline; no priors means drift is 0 but a
	// re-solve may run (NeedsResolve is true without a baseline).
	rep, err := eng.Maintain("sessions", MaintainOptions{Templates: tpl, K: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Error("first pass should resolve")
	}
	// Second pass with identical data and workload: no drift, no work.
	rep, err = eng.Maintain("sessions", MaintainOptions{Templates: tpl, K: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resolved {
		t.Errorf("stable pass should not resolve (data drift %.3f, workload drift %.3f)",
			rep.DataDrift, rep.WorkloadDrift)
	}
	if rep.DataDrift > 0.01 || rep.WorkloadDrift > 0.01 {
		t.Errorf("unexpected drift: %.3f / %.3f", rep.DataDrift, rep.WorkloadDrift)
	}
	// Workload flip triggers a re-solve; churn limits apply.
	flipped := []Template{
		{Columns: []string{"os"}, Weight: 0.9},
		{Columns: []string{"city"}, Weight: 0.1},
	}
	rep, err = eng.Maintain("sessions", MaintainOptions{Templates: flipped, K: 2000, ChurnFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkloadDrift < 0.3 {
		t.Errorf("workload flip drift = %.3f", rep.WorkloadDrift)
	}
	if !rep.Resolved {
		t.Error("workload flip should trigger a re-solve")
	}
	// Errors.
	if _, err := eng.Maintain("missing", MaintainOptions{Templates: tpl}); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := eng.Maintain("sessions", MaintainOptions{}); err == nil {
		t.Error("missing templates should error")
	}
}

// TestLayoutEquivalenceEndToEnd pins the public-API contract of the
// columnar store: two engines differing only in Config.Layout (and in
// worker count, to compose both axes) return bit-identical query results
// — same groups, points, error bars, plan decisions, scan counters and
// simulated latencies — for exact, error-bounded, time-bounded, grouped,
// disjunctive and zero-match queries.
func TestLayoutEquivalenceEndToEnd(t *testing.T) {
	row := demoEngineLayout(t, 30000, 1, LayoutRow)
	col := demoEngineLayout(t, 30000, 1, LayoutColumnar)
	colPar := demoEngineLayout(t, 30000, 8, LayoutColumnar)
	queries := []string{
		`SELECT COUNT(*) FROM sessions`,
		`SELECT AVG(sessiontime), MEDIAN(sessiontime) FROM sessions GROUP BY city`,
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 5% AT CONFIDENCE 95%`,
		`SELECT COUNT(*) FROM sessions WHERE city = 'SF' GROUP BY os WITHIN 2 SECONDS`,
		`SELECT SUM(sessiontime) FROM sessions WHERE city = 'NY' OR os = 'Linux' ERROR WITHIN 10%`,
		`SELECT QUANTILE(sessiontime, 0.9) FROM sessions WHERE ended = 1 GROUP BY genre ERROR WITHIN 15%`,
		`SELECT COUNT(*) FROM sessions WHERE city = 'Atlantis'`,
	}
	for _, src := range queries {
		want, err := row.Query(src)
		if err != nil {
			t.Fatalf("%q (row): %v", src, err)
		}
		for name, eng := range map[string]*Engine{"columnar/1": col, "columnar/8": colPar} {
			got, err := eng.Query(src)
			if err != nil {
				t.Fatalf("%q (%s): %v", src, name, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%q: %s diverged from row layout\nrow:      %+v\ncolumnar: %+v",
					src, name, want, got)
			}
		}
	}
}
