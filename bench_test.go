// Benchmarks that regenerate each table and figure of the paper's
// evaluation (§6). Every BenchmarkFigure*/BenchmarkTable* iteration
// rebuilds the dataset, the optimizer-chosen sample families and the
// simulated cluster, then reproduces the experiment — so -benchtime=1x
// gives a full regeneration pass:
//
//	go test -bench=. -benchmem
//
// cmd/blinkdb-bench prints the same tables with their values.
package blinkdb

import (
	"math/rand"
	"testing"

	"blinkdb/internal/experiments"
)

// benchCfg keeps the per-iteration cost of experiment benches manageable.
var benchCfg = experiments.Quick()

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e := experiments.Find(name)
	if e == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// Figure 6(a): sample families per storage budget (Conviva).
func BenchmarkFigure6a(b *testing.B) { runExperiment(b, "6a") }

// Figure 6(b): sample families per storage budget (TPC-H).
func BenchmarkFigure6b(b *testing.B) { runExperiment(b, "6b") }

// Figure 6(c): BlinkDB vs Hive / Shark(±cache) response time.
func BenchmarkFigure6c(b *testing.B) { runExperiment(b, "6c") }

// Figure 7(a): per-template error across sampling strategies (Conviva).
func BenchmarkFigure7a(b *testing.B) { runExperiment(b, "7a") }

// Figure 7(b): per-template error across sampling strategies (TPC-H).
func BenchmarkFigure7b(b *testing.B) { runExperiment(b, "7b") }

// Figure 7(c): error-convergence time on rare subgroups.
func BenchmarkFigure7c(b *testing.B) { runExperiment(b, "7c") }

// Figure 8(a): actual vs requested response time.
func BenchmarkFigure8a(b *testing.B) { runExperiment(b, "8a") }

// Figure 8(b): actual vs requested error bound.
func BenchmarkFigure8b(b *testing.B) { runExperiment(b, "8b") }

// Figure 8(c): latency vs cluster size.
func BenchmarkFigure8c(b *testing.B) { runExperiment(b, "8c") }

// Table 5: stratified-sample storage overhead under Zipf distributions.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// Table 5 Monte-Carlo cross-check against built samples.
func BenchmarkTable5MonteCarlo(b *testing.B) { runExperiment(b, "table5mc") }

// §1's offline-samples vs online-aggregation comparison.
func BenchmarkOnlineVsOffline(b *testing.B) { runExperiment(b, "ola") }

// Ablation benches for the design decisions called out in DESIGN.md §4.
func BenchmarkAblationDeltaReuse(b *testing.B) { runExperiment(b, "abl-delta") }
func BenchmarkAblationProbeAll(b *testing.B)   { runExperiment(b, "abl-probe") }
func BenchmarkAblationMILP(b *testing.B)       { runExperiment(b, "abl-milp") }
func BenchmarkAblationSkew(b *testing.B)       { runExperiment(b, "abl-skew") }

// ---- engine-level operation benchmarks (end-to-end public API) ----

func benchEngine(b *testing.B, rows int) *Engine {
	b.Helper()
	eng := Open(Config{Scale: 1e4, Seed: 7, CacheTables: true})
	load := eng.CreateTable("sessions",
		Col("city", String), Col("os", String), Col("sessiontime", Float))
	rng := rand.New(rand.NewSource(3))
	cities := []string{"NY", "NY", "NY", "SF", "SF", "LA", "Austin", "Boise"}
	oses := []string{"Win7", "OSX", "Linux"}
	for i := 0; i < rows; i++ {
		if err := load.Append(cities[rng.Intn(len(cities))], oses[rng.Intn(3)],
			rng.ExpFloat64()*100); err != nil {
			b.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.CreateSamples("sessions", SampleOptions{
		BudgetFraction: 0.5,
		K:              1000,
		Templates: []Template{
			{Columns: []string{"city"}, Weight: 0.7},
			{Columns: []string{"os"}, Weight: 0.3},
		},
	}); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkEngineSampleCreation measures the offline pipeline: optimizer +
// physical family construction over a 50k-row table.
func BenchmarkEngineSampleCreation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchEngine(b, 50000)
	}
}

// BenchmarkEngineErrorBoundedQuery measures the ELP runtime end to end.
func BenchmarkEngineErrorBoundedQuery(b *testing.B) {
	eng := benchEngine(b, 50000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(
			`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTimeBoundedQuery measures the latency-profile path.
func BenchmarkEngineTimeBoundedQuery(b *testing.B) {
	eng := benchEngine(b, 50000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(
			`SELECT AVG(sessiontime) FROM sessions GROUP BY city WITHIN 3 SECONDS`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineExactQuery measures the unbounded full-scan path as the
// baseline for the two above.
func BenchmarkEngineExactQuery(b *testing.B) {
	eng := benchEngine(b, 50000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(
			`SELECT AVG(sessiontime) FROM sessions GROUP BY city`); err != nil {
			b.Fatal(err)
		}
	}
}
