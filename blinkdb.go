// Package blinkdb is a Go implementation of BlinkDB (Agarwal et al.,
// EuroSys 2013): a sampling-based approximate query engine that answers
// SQL aggregation queries with bounded errors and bounded response times.
//
// The engine maintains multi-dimensional, multi-resolution stratified
// samples chosen by an optimization framework over the query-template
// workload, and at runtime selects the sample family and resolution that
// satisfy a query's ERROR WITHIN / WITHIN ... SECONDS bounds.
//
// Execution is shard-affine by default (Config.Affinity): blocks are
// striped over the simulated cluster's nodes, scan workers each own one
// node's shard, and the cluster model prices data placement — straggler
// nodes bound the scan, and merging partial aggregates across nodes pays
// a network fan-in. Results are bit-identical whether affinity is on or
// off (AffinityBlind), for any worker count and block layout.
//
// Queries flow through an explicit prepare → execute pipeline with a
// template-keyed plan cache (Config.PlanCacheSize, on by default):
// BlinkDB workloads repeat the same query templates with different
// constants, so the compiled plan, the smallest-sample probes and the
// Error-Latency Profile — the dominant cost of a bounded query — are
// computed once per template and reused. Cached state is validated
// against per-table catalog epochs on every hit: a sample refresh,
// maintenance rebuild or table reload bumps the epoch and forces a
// re-prepare, so stale probes are never served. Result.Explanation
// reports cache=hit|miss; Engine.Stats exposes hit rates and probe
// counts. With the cache disabled the engine behaves exactly as before,
// bit for bit.
//
// Above the plan cache sits a cross-query RESULT cache
// (Config.ResultCacheSize, on by default; Config.ResultCacheTTL bounds
// answer age): an exact replay — same template AND same constants/bounds
// — is served from memory without probing or scanning, and N concurrent
// cold replays of one query collapse into a single execution shared by
// all (singleflight). Answers are epoch-validated like plan-cache
// entries, optionally TTL-bounded, and deep-copied on return.
// Result.Explanation reports result=hit|miss|shared; disabling the cache
// (ResultCacheSize < 0) restores the execute-every-query pipeline bit
// for bit.
//
// # Observability
//
// The engine carries a query-lifecycle telemetry layer
// (internal/telemetry, on by default; Config.DisableTelemetry turns it
// off). Every completed query is recorded against its normalized template
// in mergeable log-bucketed histograms: wall-clock and predicted
// (simulated-cluster) latency, rows/bytes scanned, and the ELP's
// projected error half-width against the half-width actually reported.
// Engine.Telemetry folds them into per-template p50/p95/p99 snapshots —
// the calibration substrate for adaptive ELP recalibration. Prefixing a
// query with EXPLAIN ANALYZE executes it normally (sharing all cache
// state with the plain form) and additionally returns a span tree in
// Result.Trace: normalize → cache lookups → probes → per-shard scan
// partials → merge → materialize, each with monotonic durations and
// cache markers. Engine.QueryTraced returns the structured trace for
// programmatic use (e.g. Chrome trace-event export via
// telemetry.WriteChrome). Telemetry never changes answers: results are
// bit-identical with it on or off, and the disabled query path performs
// zero telemetry allocations.
//
// The columnar scan underneath picks its kernels per block from encoding
// and zone metadata, never changing answers — every dispatch rule below
// is purely physical, and the row path remains the bit-identical
// reference. Sorted or low-cardinality columns (stratification columns
// are sorted by construction; sample builders hint them) are run-length
// encoded at build time, and predicates over them evaluate once per run
// instead of once per row. Zone maps classify each block three ways:
// all-false blocks are skipped, all-true blocks (zones prove a purely
// conjunctive predicate for every row, requiring NaN-free columns and
// magnitudes below 2^53) skip predicate evaluation and batch-aggregate
// whole group runs, and mixed blocks evaluate — through a branch-free
// selection-vector kernel when the predicate is a single comparison leaf
// over a null-free numeric column and the running selectivity estimate is
// at least 1/16, through the bitmap kernels otherwise. Joins materialize
// late: the fact-only conjuncts filter columnar first, join keys probe
// the typed hash indexes straight from the key columns, and only matched
// rows are expanded into pooled combined-row buffers.
//
// # Serving
//
// The engine is serving-ready as a library: QueryCtx threads a
// context.Context through the planner into the executor's worker loops,
// so a disconnected client stops paying for its scan between block
// ranges, and QueryStream runs a query as a streaming-refinement session
// — one StreamUpdate per sample resolution along the §4.4 delta chain,
// each a complete answer with bounds, ending in a Final update
// bit-identical to Query's. cmd/blinkdb-server wraps these in HTTP/JSON
// (NDJSON and SSE streaming) with admission control priced by the ELP's
// predicted latencies: overload is shed with 429 + Retry-After before
// any scanning happens, which the Admitted/Shed/Cancelled counters in
// EngineStats make auditable.
//
// # Persistence
//
// With Config.DataDir set, the expensive warm state survives restarts
// (internal/blockfile, persistence.go). Stratified sample families
// persist as columnar segment files — fixed-width little-endian
// layouts, per-section CRC32C checksums, zone maps and sampling
// metadata — keyed by a build signature over table content, sampling
// options and engine knobs; a warm boot mmaps them back as zero-copy
// column views instead of re-stratifying. SnapshotWarmup additionally
// writes a warmup file: per-table catalog epochs with content
// fingerprints, prepared-template probe state, cached results with
// their original TTL deadlines, and the serving layer's admission-cost
// EWMA; RestoreWarmup replays it into the caches on boot, so the first
// query after a restart answers from the same steady state the previous
// process died in — bit-identical, cache markers and simulated
// latencies included. Everything under DataDir is a cache of
// reproducible state: corruption, truncation, or staleness (a table
// reloaded or resampled between snapshot and boot) is detected by
// checksum, build signature, epoch and content fingerprint, and
// degrades to a cold rebuild with the reason in PersistenceNotes —
// deleting the directory costs a cold boot, never correctness. A
// restart never extends a cached answer's TTL. Engines with loaded
// segments must be released with Close.
//
// A minimal session:
//
//	eng := blinkdb.Open(blinkdb.Config{})
//	load := eng.CreateTable("sessions",
//		blinkdb.Col("city", blinkdb.String),
//		blinkdb.Col("sessiontime", blinkdb.Float))
//	load.Append("NY", 12.5)
//	load.Close()
//	eng.CreateSamples("sessions", blinkdb.SampleOptions{
//		BudgetFraction: 0.5,
//		Templates:      []blinkdb.Template{{Columns: []string{"city"}, Weight: 1}},
//	})
//	res, _ := eng.Query(
//		"SELECT AVG(sessiontime) FROM sessions GROUP BY city " +
//			"ERROR WITHIN 10% AT CONFIDENCE 95%")
//	for _, row := range res.Rows {
//		fmt.Println(row.Group, row.Cells[0].Value, "±", row.Cells[0].Bound)
//	}
package blinkdb

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"blinkdb/internal/blockfile"
	"blinkdb/internal/catalog"
	"blinkdb/internal/cluster"
	"blinkdb/internal/elp"
	"blinkdb/internal/maintenance"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/telemetry"
	"blinkdb/internal/types"
)

// ColumnType enumerates supported column types.
type ColumnType uint8

// Column types.
const (
	Int ColumnType = iota
	Float
	String
	Bool
)

// Layout selects the physical block layout for base tables and samples.
type Layout uint8

const (
	// LayoutColumnar — the default — stores every block as per-column
	// typed slices with null bitmaps plus per-block sampling-metadata
	// arrays (internal/colstore). The executor then evaluates predicates
	// into selection bitmaps and runs aggregation over contiguous
	// float64/int64 slices, which is what lets cached samples be scanned
	// at memory bandwidth (§5). Zone maps, sampling, planning and results
	// are identical to the row layout — bit for bit, for any worker
	// count — so the knob is purely physical.
	LayoutColumnar Layout = iota
	// LayoutRow stores blocks as []Row of tagged values — the original
	// representation, kept as a fallback and as the reference for the
	// row-vs-columnar equivalence tests.
	LayoutRow
)

// Affinity selects how the executor's scan workers are scheduled over
// the simulated cluster's block placement.
type Affinity uint8

const (
	// AffinityNode — the default — schedules scans shard-affine: the
	// deterministic block partition is grouped by the node each range's
	// blocks live on, and one worker owns one node's shard (the paper's
	// §2.2.1 layout of samples striped as many small blocks across the
	// cluster, scanned node-locally). Query results are bit-identical to
	// AffinityBlind — the partition and merge order never change — and
	// the cluster model prices block placement either way: data piled on
	// one node pays a straggler-bound scan, data striped across nodes
	// pays a cross-node partial-merge fan-in.
	AffinityNode Affinity = iota
	// AffinityBlind restores the node-blind scheduler: workers claim scan
	// ranges round-robin regardless of block placement. Kept as the
	// reference for the affinity equivalence tests and for A/B
	// throughput comparisons (blinkdb-bench reports both modes).
	AffinityBlind
)

// ColumnDef declares one table column.
type ColumnDef struct {
	Name string
	Type ColumnType
}

// Col is shorthand for a ColumnDef.
func Col(name string, t ColumnType) ColumnDef { return ColumnDef{Name: name, Type: t} }

// Config configures an Engine. The zero value simulates the paper's
// 100-node evaluation cluster at physical scale 1.
type Config struct {
	// Nodes in the simulated cluster (default 100, the paper's setup).
	Nodes int
	// CoresPerNode (default 8).
	CoresPerNode int
	// Workers sizes the executor's scan worker pool. 0 (default) uses
	// CoresPerNode; 1 restores the old fully sequential executor. Query
	// results are bit-identical for every value: the executor partitions
	// block scans deterministically and merges partial aggregates in
	// block-index order.
	Workers int
	// MemCacheGBPerNode (default 60, ≈ the paper's 6 TB aggregate).
	MemCacheGBPerNode float64
	// Scale maps stored bytes to logical bytes for latency modelling
	// (default 1; experiments use 1e4-1e6 to emulate TB-scale tables).
	Scale float64
	// Confidence is the default CI level (default 0.95).
	Confidence float64
	// Seed drives all sampling randomness (default 1).
	Seed int64
	// RowsPerBlock is the storage block granularity. When 0 (default)
	// blocks are auto-sized so one block represents ≈256 MB of logical
	// data at the configured Scale (HDFS-style blocks).
	RowsPerBlock int
	// Layout is the physical block layout for tables and samples built
	// by this engine. The zero value is LayoutColumnar (vectorized
	// scans); LayoutRow restores the row-oriented store. Query results
	// are bit-identical across layouts.
	Layout Layout
	// Affinity is the scan scheduling mode. The zero value is
	// AffinityNode (shard-affine: one worker per simulated node's
	// blocks); AffinityBlind restores node-blind range scheduling. Query
	// results are bit-identical across modes.
	Affinity Affinity
	// PlanCacheSize caps how many query templates keep their prepared
	// state — compiled plan, sample probes, Error-Latency Profile —
	// across queries (the hot-path amortization for template-heavy
	// workloads). 0 (the default) selects 256 templates; a negative value
	// disables the cache entirely, restoring the prepare-every-query
	// pipeline whose answers and latencies are bit-identical to the
	// cached path for identical queries. Entries are epoch-validated, so
	// RefreshSamples/Maintain immediately invalidate affected templates.
	PlanCacheSize int
	// ResultCacheSize caps how many completed ANSWERS are kept keyed by
	// (template, full parameter vector): an exact replay of a recent
	// query is served straight from memory — no probe, no scan — and
	// concurrent cold replays of one query collapse into a single
	// execution (singleflight). 0 (the default) selects 1024 answers; a
	// negative value disables the cache, restoring the execute-every-
	// query pipeline bit-identically (no result= markers, same answers
	// and latencies). Served answers are epoch-validated like plan-cache
	// entries — RefreshSamples/Maintain invalidate them immediately —
	// and deep-copied on return, so callers can never corrupt the cache.
	// Unlike a plan-cache hit, which reuses template-level probe state to
	// answer NEW constants, a result-cache hit requires the parameters to
	// match exactly and replays the identical answer.
	ResultCacheSize int
	// ResultCacheTTL additionally bounds the wall-clock age of served
	// answers (epochs track sample rebuilds; the TTL covers base-data
	// drift underneath unchanged samples). 0 (the default) applies no
	// TTL: answers live until evicted or epoch-invalidated.
	ResultCacheTTL time.Duration
	// CacheTables places base tables in simulated cluster memory.
	CacheTables bool
	// DisableTelemetry turns off per-template query telemetry (the
	// histograms behind Engine.Telemetry and the per-query Observation
	// recording). Off by default — telemetry is on, like both caches.
	// Answers are bit-identical either way; disabling only removes the
	// recording overhead (a timestamp pair and a few atomic adds per
	// query). EXPLAIN ANALYZE span capture is per-query and unaffected.
	DisableTelemetry bool
	// FullProbePricing charges ELP probe runs like any other sample
	// read. By default probes are priced at job overhead only, matching
	// §4.1.1's assumption that the smallest per-family samples are
	// memory-resident and "very fast" to query.
	FullProbePricing bool
	// DataDir enables persistence when set: CreateSamples writes built
	// families as columnar segment files under it and loads them back
	// on matching warm boots instead of re-stratifying, and
	// SnapshotWarmup/RestoreWarmup persist the plan cache's probe
	// state, the result cache's answers and per-table epochs across
	// restarts. Empty (the default) keeps the engine fully in-memory.
	// Everything under DataDir is a cache of reproducible state:
	// deleting it costs a cold boot, never correctness.
	DataDir string
}

func (c Config) normalize() Config {
	if c.Nodes <= 0 {
		c.Nodes = 100
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 8
	}
	if c.Workers == 0 {
		c.Workers = c.CoresPerNode
	}
	if c.Workers < 0 {
		c.Workers = 1
	}
	if c.MemCacheGBPerNode <= 0 {
		c.MemCacheGBPerNode = 60
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.PlanCacheSize < 0 {
		c.PlanCacheSize = -1 // disabled; elp treats ≤0 as off
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 1024
	}
	if c.ResultCacheSize < 0 {
		c.ResultCacheSize = -1 // disabled; elp treats ≤0 as off
	}
	if c.ResultCacheTTL < 0 {
		c.ResultCacheTTL = 0
	}
	return c
}

// storageLayout maps the public knob to the storage-level enum.
func (c Config) storageLayout() storage.Layout {
	if c.Layout == LayoutRow {
		return storage.RowLayout
	}
	return storage.ColumnarLayout
}

// Engine is a BlinkDB instance: a catalog of tables and samples plus the
// runtime that answers bounded queries over them.
type Engine struct {
	cfg  Config
	cat  *catalog.Catalog
	clus *cluster.Cluster
	rt   *elp.Runtime
	tele *telemetry.Registry // nil when Config.DisableTelemetry

	maint    map[string]*maintenance.Maintainer
	lastSnap map[string]*maintenance.Snapshot

	// Persistence bookkeeping (persistence.go): the build signature and
	// report CreateSamples recorded per table, and the fall-back audit
	// trail behind PersistenceNotes.
	sampleSigs    map[string]uint64
	sampleReports map[string]*SampleReport
	persistNotes  []string
	// openSegs are the mmap'd segment files backing warm-loaded sample
	// families; their mappings must outlive the families' column views.
	openSegs []*blockfile.Segment
}

// Close releases resources the engine holds on the filesystem — the
// mmap'd segment files backing warm-loaded samples. The engine must
// not be queried after Close: column views into the unmapped segments
// become invalid. Engines without Config.DataDir hold nothing and may
// skip Close.
func (e *Engine) Close() error {
	var first error
	for _, s := range e.openSegs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.openSegs = nil
	return first
}

// Open creates an engine.
func Open(cfg Config) *Engine {
	cfg = cfg.normalize()
	clus := cluster.New(cluster.Config{
		Nodes:                cfg.Nodes,
		CoresPerNode:         cfg.CoresPerNode,
		MemCacheBytesPerNode: cfg.MemCacheGBPerNode * 1e9,
	})
	cat := catalog.New()
	affine := cfg.Affinity != AffinityBlind
	planCache := cfg.PlanCacheSize
	if planCache < 0 {
		planCache = 0 // explicit disable
	}
	resultCache := cfg.ResultCacheSize
	if resultCache < 0 {
		resultCache = 0 // explicit disable
	}
	var tele *telemetry.Registry
	if !cfg.DisableTelemetry {
		tele = telemetry.NewRegistry()
	}
	rt := elp.New(cat, clus, elp.Options{
		Confidence:        cfg.Confidence,
		Scale:             cfg.Scale,
		ProbeOverheadOnly: !cfg.FullProbePricing,
		Workers:           cfg.Workers,
		Affine:            &affine,
		PlanCacheSize:     planCache,
		ResultCacheSize:   resultCache,
		ResultCacheTTL:    cfg.ResultCacheTTL,
		Telemetry:         tele,
	})
	return &Engine{cfg: cfg, cat: cat, clus: clus, rt: rt, tele: tele}
}

// Loader streams rows into a new table.
type Loader struct {
	eng     *Engine
	table   *storage.Table
	builder *storage.Builder
	schema  *types.Schema
	place   storage.Placement
	err     error
}

// CreateTable registers a new table and returns a loader for its rows.
func (e *Engine) CreateTable(name string, cols ...ColumnDef) *Loader {
	tcols := make([]types.Column, len(cols))
	for i, c := range cols {
		var k types.Kind
		switch c.Type {
		case Int:
			k = types.KindInt
		case Float:
			k = types.KindFloat
		case String:
			k = types.KindString
		case Bool:
			k = types.KindBool
		}
		tcols[i] = types.Column{Name: c.Name, Kind: k}
	}
	schema := types.NewSchema(tcols...)
	tab := storage.NewTable(name, schema)
	place := storage.OnDisk
	if e.cfg.CacheTables {
		place = storage.InMemory
	}
	provisional := e.cfg.RowsPerBlock
	if provisional <= 0 {
		provisional = 8192
	}
	return &Loader{
		eng:     e,
		table:   tab,
		builder: storage.NewBuilderLayout(tab, provisional, e.cfg.Nodes, place, e.cfg.storageLayout()),
		schema:  schema,
		place:   place,
	}
}

// Append adds one row; values must match the declared column order.
// Accepted Go types: int/int64/float64/string/bool/nil.
func (l *Loader) Append(values ...any) error {
	if l.err != nil {
		return l.err
	}
	if len(values) != l.schema.Len() {
		l.err = fmt.Errorf("blinkdb: row has %d values, schema %s has %d",
			len(values), l.table.Name, l.schema.Len())
		return l.err
	}
	row := make(types.Row, len(values))
	for i, v := range values {
		val, err := toValue(v)
		if err != nil {
			l.err = fmt.Errorf("blinkdb: column %s: %w", l.schema.Columns[i].Name, err)
			return l.err
		}
		row[i] = val
	}
	l.builder.Append(row, storage.RowMeta{Rate: 1})
	return nil
}

// Close finalizes the table and registers it with the engine. When the
// engine auto-sizes blocks, the table is re-chunked so each block stands
// for ≈256 MB of logical data at the configured Scale.
func (l *Loader) Close() error {
	if l.err != nil {
		return l.err
	}
	l.builder.Finish()
	if l.eng.cfg.RowsPerBlock <= 0 && l.table.NumRows() > 0 {
		target := l.eng.blockRows(l.table)
		rechunked := storage.NewTable(l.table.Name, l.schema)
		b := storage.NewBuilderLayout(rechunked, target, l.eng.cfg.Nodes, l.place, l.eng.cfg.storageLayout())
		b.AppendTable(l.table)
		b.Finish()
		l.table = rechunked
	}
	l.eng.cat.Register(l.table)
	return nil
}

// blockRows sizes blocks to ≈256 MB logical each at the engine's scale.
func (e *Engine) blockRows(t *storage.Table) int {
	avgRow := math.Max(1, float64(t.Bytes())/float64(t.NumRows()))
	r := int(256e6 / (e.cfg.Scale * avgRow))
	if r < 2 {
		r = 2
	}
	if r > 8192 {
		r = 8192
	}
	return r
}

func toValue(v any) (types.Value, error) {
	switch x := v.(type) {
	case nil:
		return types.Null(), nil
	case int:
		return types.Int(int64(x)), nil
	case int32:
		return types.Int(int64(x)), nil
	case int64:
		return types.Int(x), nil
	case float32:
		return types.Float(float64(x)), nil
	case float64:
		return types.Float(x), nil
	case string:
		return types.Str(x), nil
	case bool:
		return types.Bool(x), nil
	default:
		return types.Null(), fmt.Errorf("unsupported value type %T", v)
	}
}

// Template declares one workload query template for sample creation.
type Template struct {
	// Columns is the WHERE ∪ GROUP BY column set of the template.
	Columns []string
	// Weight is the template's frequency/importance in (0, 1].
	Weight float64
}

// SampleOptions controls CreateSamples.
type SampleOptions struct {
	// BudgetFraction is the storage budget as a fraction of the base
	// table size (the paper evaluates 0.5, 1.0 and 2.0). Default 0.5.
	BudgetFraction float64
	// K is the largest stratification cap (default scales to table size:
	// max(100, rows/100), emulating the paper's K = 100,000 at 5.5B rows).
	K int64
	// Resolutions per family (default 3).
	Resolutions int
	// CapRatio between successive resolutions (default 2).
	CapRatio float64
	// MaxColumns per stratification candidate (default 3, §3.2.2).
	MaxColumns int
	// UniformFraction sizes the always-built uniform family as a
	// fraction of the table (default 0.1).
	UniformFraction float64
	// Templates is the workload; required.
	Templates []Template
	// ChurnFraction is r for re-solves (default 1 = unconstrained).
	ChurnFraction float64
}

// SampleReport summarises what CreateSamples built.
type SampleReport struct {
	// Families lists the built families: column sets ("[city]",
	// "uniform") with their storage bytes.
	Families []FamilyInfo
	// TotalBytes is the cumulative sample storage.
	TotalBytes int64
	// BudgetBytes was the allowed budget.
	BudgetBytes int64
	// Optimal is true when the exact MILP solver ran.
	Optimal bool
}

// FamilyInfo describes one built family.
type FamilyInfo struct {
	// Columns is the stratification set; empty means uniform.
	Columns []string
	// StorageBytes is the family's physical footprint.
	StorageBytes int64
	// Rows is the row count of the largest resolution.
	Rows int64
	// Resolutions is the number of nested sample sizes.
	Resolutions int
}

// CreateSamples runs the §3.2 optimization over the declared templates and
// physically builds the chosen stratified families plus a uniform family.
func (e *Engine) CreateSamples(table string, opts SampleOptions) (*SampleReport, error) {
	entry, err := e.cat.Lookup(table)
	if err != nil {
		return nil, err
	}
	if len(opts.Templates) == 0 {
		return nil, fmt.Errorf("blinkdb: CreateSamples requires query templates")
	}
	if opts.BudgetFraction <= 0 {
		opts.BudgetFraction = 0.5
	}
	if opts.UniformFraction <= 0 {
		opts.UniformFraction = 0.1
	}
	if opts.K <= 0 {
		opts.K = int64(math.Max(100, float64(entry.Table.NumRows())/100))
	}
	if opts.ChurnFraction == 0 {
		opts.ChurnFraction = -1
	}

	specs := make([]optimizer.TemplateSpec, len(opts.Templates))
	for i, t := range opts.Templates {
		specs[i] = optimizer.TemplateSpec{
			Columns: types.NewColumnSet(t.Columns...),
			Weight:  t.Weight,
		}
	}
	blockRows := e.cfg.RowsPerBlock
	if blockRows <= 0 {
		blockRows = e.blockRows(entry.Table)
	}
	cfg := optimizer.Config{
		K:           opts.K,
		CapRatio:    opts.CapRatio,
		Resolutions: opts.Resolutions,
		MaxColumns:  opts.MaxColumns,
		BudgetBytes: int64(float64(entry.Table.Bytes()) * opts.BudgetFraction),
		ChurnFrac:   opts.ChurnFraction,
		Workers:     e.cfg.Workers,
		Build: sample.BuildConfig{
			RowsPerBlock: blockRows,
			Nodes:        e.cfg.Nodes,
			Place:        storage.InMemory, // samples live in the cache
			Layout:       e.cfg.storageLayout(),
			Seed:         e.cfg.Seed,
		},
	}
	// Warm path: when DataDir holds families persisted by an earlier
	// run of this exact build (signature over table content, templates,
	// budget and seed), load them instead of re-stratifying. Sampling
	// is seeded-deterministic, so the loaded families are the ones the
	// cold path below would produce.
	var sig uint64
	if e.cfg.DataDir != "" {
		sig = e.sampleSignature(entry, opts, blockRows)
		if rep, ok := e.loadPersistedSamples(table, sig); ok {
			e.recordSampleReport(table, rep)
			return rep, nil
		}
	}
	plan, err := optimizer.ChooseSamples(entry.Table, specs, cfg)
	if err != nil {
		return nil, err
	}
	fams, err := optimizer.BuildFamilies(entry.Table, plan, cfg, opts.UniformFraction)
	if err != nil {
		return nil, err
	}
	rep := &SampleReport{BudgetBytes: cfg.BudgetBytes, Optimal: plan.Optimal}
	for _, f := range fams {
		if err := e.cat.AddFamily(table, f); err != nil {
			return nil, err
		}
		rep.Families = append(rep.Families, FamilyInfo{
			Columns:      f.Phi.Columns(),
			StorageBytes: f.StorageBytes(),
			Rows:         f.StorageRows(),
			Resolutions:  f.Resolutions(),
		})
		rep.TotalBytes += f.StorageBytes()
	}
	if e.cfg.DataDir != "" {
		e.persistSamples(table, sig, fams, rep)
	}
	e.recordSampleReport(table, rep)
	return rep, nil
}

// recordSampleReport remembers the report SnapshotWarmup re-persists
// alongside refreshed families.
func (e *Engine) recordSampleReport(table string, rep *SampleReport) {
	if e.sampleReports == nil {
		e.sampleReports = map[string]*SampleReport{}
	}
	e.sampleReports[strings.ToLower(table)] = rep
}

// Cell is one aggregate output with its error bar.
type Cell struct {
	// Name is the aggregate label (alias or canonical form).
	Name string
	// Value is the point estimate.
	Value float64
	// Bound is the CI half-width at the result's confidence.
	Bound float64
	// RelErr is Bound/|Value| (0 when exact).
	RelErr float64
	// Exact marks answers with no sampling error.
	Exact bool
	// Rows is the matching sample rows behind the estimate.
	Rows int64
}

// ResultRow is one output group.
type ResultRow struct {
	// Group is the rendered GROUP BY key ("(all)" for global aggregates).
	Group string
	// Cells hold the aggregates in SELECT order.
	Cells []Cell
}

// Result is a query outcome.
type Result struct {
	// Rows are the output groups, sorted by key.
	Rows []ResultRow
	// Confidence of all error bars.
	Confidence float64
	// SimLatencySeconds is the latency the simulated cluster attributes
	// to this query (probes + sample read).
	SimLatencySeconds float64
	// Level is the sample resolution that served the answer: -1 when any
	// disjunct ran on the base table, otherwise the max resolution level
	// across disjuncts.
	Level int
	// SampleDescription says which sample answered the query, e.g.
	// "S([city], K=1000)" or "base table".
	SampleDescription string
	// Explanation is the planner's reasoning (EXPLAIN-style); with the
	// plan cache enabled it includes a cache=hit|miss marker, and with
	// the result cache enabled a result=hit|miss|shared marker.
	Explanation string
	// PlanCache reports the plan-cache outcome for this query: "hit",
	// "miss", or "" when the cache is disabled — or when the answer came
	// from the result cache, which never consults the plan pipeline.
	PlanCache string
	// ResultCache reports the result-cache outcome: "hit" (an exact
	// replay served from memory), "miss" (this query executed and cached
	// the answer), "shared" (a concurrent identical query's execution
	// supplied it), or "" when the result cache is disabled.
	ResultCache string
	// RowsScanned and RowsMatched describe the work done.
	RowsScanned int64
	RowsMatched int64
	// PredictedBound is the ELP-projected worst-group CI half-width at
	// the chosen resolution (worst across disjuncts; 0 for exact
	// execution) — compare against the cells' Bound to judge the
	// profile's calibration.
	PredictedBound float64
	// Trace is the rendered query-lifecycle span tree, filled only for
	// EXPLAIN ANALYZE queries (empty otherwise). Use QueryTraced for the
	// structured form.
	Trace string
}

// MaxRelErr returns the worst relative error across all cells.
func (r *Result) MaxRelErr() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			if c.RelErr > worst && !math.IsInf(c.RelErr, 1) {
				worst = c.RelErr
			}
		}
	}
	return worst
}

// Query parses, plans and executes one query. Queries without bounds run
// exactly on the base table; bounded queries run on the best sample. An
// EXPLAIN ANALYZE prefix additionally fills Result.Trace with the
// rendered query-lifecycle span tree (cache state is shared with the
// plain form of the query, so a warm replay shows the warm path).
func (e *Engine) Query(sql string) (*Result, error) {
	res, _, err := e.queryTraced(sql)
	return res, err
}

// QueryCtx is Query with cancellation: a ctx that is cancelled before the
// call returns immediately without planning or scanning, and a ctx
// cancelled mid-scan stops the executor's workers between block ranges.
// Cancelled queries return ctx.Err() (or a wrapped form satisfying
// errors.Is) and count toward EngineStats.Cancelled.
func (e *Engine) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	res, _, err := e.query(ctx, sql, false)
	return res, err
}

// QueryTraced is Query with the structured span tree returned alongside
// the result: the trace is always captured, whether or not the query has
// an EXPLAIN ANALYZE prefix. Use it to feed telemetry.WriteChrome or to
// walk span durations programmatically; plain Query keeps the zero-
// overhead untraced path.
func (e *Engine) QueryTraced(sql string) (*Result, *telemetry.Trace, error) {
	return e.query(context.Background(), sql, true)
}

func (e *Engine) queryTraced(sql string) (*Result, *telemetry.Trace, error) {
	return e.query(context.Background(), sql, false)
}

func (e *Engine) query(ctx context.Context, sql string, forceTrace bool) (*Result, *telemetry.Trace, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	var tr *telemetry.Trace
	if q.Analyze || forceTrace {
		tr = telemetry.New("query")
	}
	resp, err := e.rt.RunCtxTraced(ctx, q, tr)
	tr.Finish()
	if err != nil {
		return nil, nil, err
	}
	return buildResult(q, resp, tr), tr, nil
}

// StreamUpdate is one refinement of a streaming query session: a
// complete Result at one sample resolution. Seq numbers updates from 0;
// exactly one update has Final set, and it is bit-identical (including
// latencies and cache markers) to what Query would have returned for the
// same SQL against the same engine state.
type StreamUpdate struct {
	// Result is the full answer at this refinement's resolution.
	Result *Result
	// Level is the sample resolution that served it (-1 = base table).
	Level int
	// Seq numbers refinements from 0 within the session.
	Seq int
	// Final marks the session's last, authoritative answer.
	Final bool
}

// QueryStream executes sql as a streaming-refinement session: emit is
// called once per refinement in increasing-resolution order, ending with
// exactly one Final update. Sessions that cannot refine — exact queries,
// result-cache hits, answers shared from a concurrent identical query,
// or a probe already at the final resolution — emit a single Final
// update, so emit always runs at least once on success. An error from
// emit aborts the session and is returned; ctx cancellation behaves as
// in QueryCtx, checked between refinements and inside scans.
func (e *Engine) QueryStream(ctx context.Context, sql string, emit func(StreamUpdate) error) error {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return err
	}
	var tr *telemetry.Trace
	if q.Analyze {
		tr = telemetry.New("query")
	}
	err = e.rt.RunStreamTraced(ctx, q, tr, func(r elp.Refinement) error {
		if r.Final {
			tr.Finish()
		}
		return emit(StreamUpdate{
			Result: buildResult(q, r.Resp, tr),
			Level:  r.Level,
			Seq:    r.Seq,
			Final:  r.Final,
		})
	})
	tr.Finish()
	return err
}

// buildResult maps an elp response onto the public Result shape.
func buildResult(q *sqlparser.Query, resp *elp.Response, tr *telemetry.Trace) *Result {
	out := &Result{
		Confidence:        resp.Confidence,
		SimLatencySeconds: resp.SimLatency,
		RowsScanned:       resp.Result.RowsScanned,
		RowsMatched:       resp.Result.RowsMatched,
		PlanCache:         resp.Cache,
		ResultCache:       resp.ResultCache,
		Trace:             tr.Render(),
	}
	var expl, desc []string
	for _, d := range resp.Decisions {
		expl = append(expl, d.Reason)
		if d.UsedBase {
			desc = append(desc, "base table")
			out.Level = -1
		} else {
			desc = append(desc, d.View.String())
			if out.Level >= 0 && d.View.Level > out.Level {
				out.Level = d.View.Level
			}
		}
		if d.PredictedBound > out.PredictedBound {
			out.PredictedBound = d.PredictedBound
		}
	}
	out.Explanation = strings.Join(expl, " | ")
	out.SampleDescription = strings.Join(desc, " | ")
	for _, g := range resp.Result.Groups {
		row := ResultRow{Group: g.KeyString()}
		for i, est := range g.Estimates {
			name := ""
			if i < len(q.Aggs) {
				name = q.Aggs[i].Alias
			}
			re := est.RelErr()
			row.Cells = append(row.Cells, Cell{
				Name:   name,
				Value:  est.Point,
				Bound:  est.Bound,
				RelErr: re,
				Exact:  est.Exact,
				Rows:   est.Rows,
			})
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Telemetry folds the engine's per-template histograms into a snapshot:
// p50/p95/p99 latency (wall-clock and simulated), rows/bytes scanned,
// and predicted-vs-observed error half-width per template. Returns an
// empty snapshot when Config.DisableTelemetry is set. Safe for
// concurrent use with Query.
func (e *Engine) Telemetry() telemetry.Snapshot {
	return e.tele.Snapshot()
}

// EngineStats is a snapshot of the engine's serving counters.
type EngineStats struct {
	// PlanExecs counts executor invocations (probes + final reads); a
	// fully memoized plan-cache hit adds 0.
	PlanExecs int64
	// ProbeExecs counts the subset of PlanExecs that were ELP probes —
	// the work the plan cache amortizes.
	ProbeExecs int64
	// Prepares counts template compilations (cold paths).
	Prepares int64
	// PlanCacheHits / PlanCacheMisses count plan-cache outcomes; a stale
	// (epoch-invalidated) entry counts as a miss. Both 0 when the cache
	// is disabled. A result-cache hit consults neither.
	PlanCacheHits, PlanCacheMisses int64
	// ResultCacheHits / ResultCacheMisses / ResultCacheShared count
	// result-cache outcomes: exact replays served from memory, executions
	// that entered the cache, and singleflight waiters that shared a
	// concurrent miss's execution. Stale or TTL-expired entries count as
	// misses. All 0 when the result cache is disabled.
	ResultCacheHits, ResultCacheMisses, ResultCacheShared int64
	// Admitted / Shed count serving-layer admission outcomes, recorded by
	// the admission queue's owner (blinkdb-server) via NoteAdmitted /
	// NoteShed. A shed query never reaches the pipeline: Shed can grow
	// while PlanExecs stands still. Both stay 0 in library-only use.
	Admitted, Shed int64
	// Cancelled counts queries aborted by context cancellation (client
	// disconnect, deadline) before or during scanning. Cancelled queries
	// produce no answer and are not counted in AnswersByLevel.
	Cancelled int64
	// AnswersByLevel counts answers by serving resolution level
	// (-1 = base table).
	AnswersByLevel map[int]int64
}

// PlanCacheHitRate returns hits/(hits+misses), 0 before any query.
func (s EngineStats) PlanCacheHitRate() float64 {
	total := s.PlanCacheHits + s.PlanCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.PlanCacheHits) / float64(total)
}

// ResultCacheHitRate returns the fraction of queries answered without
// executing: (hits+shared)/(hits+shared+misses), 0 before any query.
func (s EngineStats) ResultCacheHitRate() float64 {
	total := s.ResultCacheHits + s.ResultCacheShared + s.ResultCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.ResultCacheHits+s.ResultCacheShared) / float64(total)
}

// Delta returns the counters accumulated since prev was taken: s - prev,
// field by field. AnswersByLevel keeps only levels whose count changed.
// Use it to window cumulative snapshots (e.g. per-interval hit rates).
func (s EngineStats) Delta(prev EngineStats) EngineStats {
	d := EngineStats{
		PlanExecs:         s.PlanExecs - prev.PlanExecs,
		ProbeExecs:        s.ProbeExecs - prev.ProbeExecs,
		Prepares:          s.Prepares - prev.Prepares,
		PlanCacheHits:     s.PlanCacheHits - prev.PlanCacheHits,
		PlanCacheMisses:   s.PlanCacheMisses - prev.PlanCacheMisses,
		ResultCacheHits:   s.ResultCacheHits - prev.ResultCacheHits,
		ResultCacheMisses: s.ResultCacheMisses - prev.ResultCacheMisses,
		ResultCacheShared: s.ResultCacheShared - prev.ResultCacheShared,
		Admitted:          s.Admitted - prev.Admitted,
		Shed:              s.Shed - prev.Shed,
		Cancelled:         s.Cancelled - prev.Cancelled,
	}
	for level, n := range s.AnswersByLevel {
		if diff := n - prev.AnswersByLevel[level]; diff != 0 {
			if d.AnswersByLevel == nil {
				d.AnswersByLevel = make(map[int]int64)
			}
			d.AnswersByLevel[level] = diff
		}
	}
	return d
}

// Stats returns the engine's cumulative serving counters. The snapshot is
// taken under a single lock, so counters are mutually consistent (no torn
// reads between e.g. hits and misses). Safe for concurrent use with Query.
func (e *Engine) Stats() EngineStats {
	s := e.rt.Stats()
	return EngineStats{
		PlanExecs:         s.PlanExecs,
		ProbeExecs:        s.ProbeExecs,
		Prepares:          s.Prepares,
		PlanCacheHits:     s.CacheHits,
		PlanCacheMisses:   s.CacheMisses,
		ResultCacheHits:   s.ResultHits,
		ResultCacheMisses: s.ResultMisses,
		ResultCacheShared: s.ResultShared,
		Admitted:          s.Admitted,
		Shed:              s.Shed,
		Cancelled:         s.Cancelled,
		AnswersByLevel:    s.AnswersByLevel,
	}
}

// TemplateWallSeconds returns the mean observed wall-clock seconds for
// queries of the given normalized template key, or false when the
// template has never completed (or telemetry is disabled). The serving
// layer uses it to price admission before any planning happens.
func (e *Engine) TemplateWallSeconds(key string) (float64, bool) {
	return e.tele.ObservedWallSeconds(key)
}

// NoteAdmitted records one admission-control accept in the engine's
// stats. The serving layer (blinkdb-server) owns the admission decision;
// the engine only keeps the counter so one Stats snapshot covers the
// whole serving picture.
func (e *Engine) NoteAdmitted() { e.rt.NoteAdmitted() }

// NoteShed records one admission-control rejection: a query shed by the
// serving layer before any planning or scanning happened.
func (e *Engine) NoteShed() { e.rt.NoteShed() }

// NoteCancelled records a request whose client gave up while it was
// still queued for admission — it never reached the pipeline, so no
// other counter would see it, and arrivals would stop balancing against
// admitted + shed + cancelled.
func (e *Engine) NoteCancelled() { e.rt.NoteCancelled() }

// Tables lists registered table names.
func (e *Engine) Tables() []string { return e.cat.Tables() }

// TableRows returns the row count of a table.
func (e *Engine) TableRows(name string) (int64, error) {
	entry, err := e.cat.Lookup(name)
	if err != nil {
		return 0, err
	}
	return entry.Table.NumRows(), nil
}

// RefreshSamples re-draws one sample family with fresh randomness (§4.5's
// background replacement, exposed as an explicit step). Returns the
// refreshed family's column list, or ok=false when the table has no
// samples.
func (e *Engine) RefreshSamples(table string) (columns []string, ok bool, err error) {
	entry, err := e.cat.Lookup(table)
	if err != nil {
		return nil, false, err
	}
	r := maintenance.NewRefresher(e.cat, table, sample.BuildConfig{
		RowsPerBlock: e.blockRows(entry.Table),
		Nodes:        e.cfg.Nodes,
		Place:        storage.InMemory,
		Layout:       e.cfg.storageLayout(),
		Seed:         e.cfg.Seed + 7717,
	})
	phi, ok, err := r.RefreshNext()
	if err != nil || !ok {
		return nil, ok, err
	}
	return phi.Columns(), true, nil
}

// MaintainReport describes what a maintenance pass did.
type MaintainReport struct {
	// DataDrift and WorkloadDrift are the measured total-variation
	// distances against the last observed statistics (0 on first run).
	DataDrift     float64
	WorkloadDrift float64
	// Resolved is true when the optimization was re-run.
	Resolved bool
	// Built and Dropped list the column sets changed.
	Built, Dropped [][]string
}

// MaintainOptions controls a maintenance pass (§3.2.3, §4.5).
type MaintainOptions struct {
	// Templates is the current workload (required).
	Templates []Template
	// ChurnFraction is r in constraint (5): the storage share of
	// existing samples that may be rebuilt/dropped. Default 1.
	ChurnFraction float64
	// K, Resolutions, CapRatio, BudgetFraction mirror SampleOptions and
	// default the same way.
	K              int64
	Resolutions    int
	CapRatio       float64
	BudgetFraction float64
	// Force re-solves even when drift is below thresholds.
	Force bool
}

// Maintain runs one maintenance pass over a table: measure data/workload
// drift against the previous pass, and when it exceeds the 10% thresholds
// (or Force is set) re-solve the sample-selection problem under the churn
// constraint and apply the resulting build/drop diff.
func (e *Engine) Maintain(table string, opts MaintainOptions) (*MaintainReport, error) {
	entry, err := e.cat.Lookup(table)
	if err != nil {
		return nil, err
	}
	if len(opts.Templates) == 0 {
		return nil, fmt.Errorf("blinkdb: Maintain requires query templates")
	}
	if opts.BudgetFraction <= 0 {
		opts.BudgetFraction = 0.5
	}
	if opts.K <= 0 {
		opts.K = int64(math.Max(100, float64(entry.Table.NumRows())/100))
	}
	if opts.ChurnFraction == 0 {
		opts.ChurnFraction = 1
	}
	specs := make([]optimizer.TemplateSpec, len(opts.Templates))
	var cols []string
	seen := map[string]bool{}
	for i, t := range opts.Templates {
		specs[i] = optimizer.TemplateSpec{
			Columns: types.NewColumnSet(t.Columns...),
			Weight:  t.Weight,
		}
		for _, c := range t.Columns {
			lc := strings.ToLower(c)
			if !seen[lc] {
				seen[lc] = true
				cols = append(cols, lc)
			}
		}
	}

	cfg := optimizer.Config{
		K:           opts.K,
		CapRatio:    opts.CapRatio,
		Resolutions: opts.Resolutions,
		BudgetBytes: int64(float64(entry.Table.Bytes()) * opts.BudgetFraction),
		ChurnFrac:   opts.ChurnFraction,
		Workers:     e.cfg.Workers,
		Build: sample.BuildConfig{
			RowsPerBlock: e.blockRows(entry.Table),
			Nodes:        e.cfg.Nodes,
			Place:        storage.InMemory,
			Layout:       e.cfg.storageLayout(),
			Seed:         e.cfg.Seed + 31,
		},
	}

	if e.maint == nil {
		e.maint = map[string]*maintenance.Maintainer{}
	}
	m, ok := e.maint[strings.ToLower(table)]
	if !ok {
		m = maintenance.NewMaintainer(e.cat, table, cfg)
		e.maint[strings.ToLower(table)] = m
	}
	m.Cfg = cfg

	snap, err := maintenance.TakeSnapshot(entry.Table, cols, specs)
	if err != nil {
		return nil, err
	}
	rep := &MaintainReport{}
	if last := e.lastSnap[strings.ToLower(table)]; last != nil {
		rep.DataDrift = maintenance.DataDrift(last, snap)
		rep.WorkloadDrift = maintenance.WorkloadDrift(last, snap)
	}
	needs := m.NeedsResolve(snap) || opts.Force
	m.Observe(snap)
	if e.lastSnap == nil {
		e.lastSnap = map[string]*maintenance.Snapshot{}
	}
	e.lastSnap[strings.ToLower(table)] = snap
	if !needs {
		return rep, nil
	}
	diff, err := m.Resolve(specs)
	if err != nil {
		return nil, err
	}
	if err := m.Apply(diff); err != nil {
		return nil, err
	}
	rep.Resolved = true
	for _, phi := range diff.Build {
		rep.Built = append(rep.Built, phi.Columns())
	}
	for _, phi := range diff.Drop {
		rep.Dropped = append(rep.Dropped, phi.Columns())
	}
	return rep, nil
}
