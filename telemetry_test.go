package blinkdb

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"blinkdb/internal/telemetry"
)

// stripTrace zeroes the rendered trace so answer comparisons ignore the
// (timing-dependent) span tree.
func stripTrace(r *Result) *Result {
	c := *r
	c.Trace = ""
	return &c
}

// TestExplainAnalyzeEndToEnd drives the EXPLAIN ANALYZE surface: the cold
// run renders a span tree with the cold-path spans and cache markers, the
// warm run (EXPLAIN ANALYZE shares cache state with the plain query)
// renders the result-cache hit path, and the answers match the plain
// query bit for bit.
func TestExplainAnalyzeEndToEnd(t *testing.T) {
	eng := demoEngine(t, 20000)
	const plain = `SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`

	cold, err := eng.Query(`EXPLAIN ANALYZE ` + plain)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Trace == "" {
		t.Fatal("EXPLAIN ANALYZE returned no trace")
	}
	for _, want := range []string{"query", "normalize", "execute", "plan-cache lookup", "cache=miss", "result=miss", "prepare", "bind+scan", "scan blocks=", "merge", "materialize"} {
		if !strings.Contains(cold.Trace, want) {
			t.Errorf("cold trace missing %q:\n%s", want, cold.Trace)
		}
	}

	warm, err := eng.Query(`EXPLAIN ANALYZE ` + plain)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.Trace, "result=hit") {
		t.Errorf("warm trace should mark the result-cache hit:\n%s", warm.Trace)
	}
	if strings.Contains(warm.Trace, "prepare") || strings.Contains(warm.Trace, "scan blocks=") {
		t.Errorf("warm hit should not prepare or scan:\n%s", warm.Trace)
	}

	// The plain replay is another result-cache hit; modulo the rendered
	// trace it must equal the analyzed warm answer exactly.
	rep, err := eng.Query(plain)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != "" {
		t.Errorf("plain query should carry no trace, got:\n%s", rep.Trace)
	}
	if !reflect.DeepEqual(stripTrace(warm), stripTrace(rep)) {
		t.Errorf("EXPLAIN ANALYZE changed the answer:\nanalyze %+v\nplain   %+v", stripTrace(warm), stripTrace(rep))
	}
}

// TestQueryTracedSpanAccounting checks that span durations account for
// the query: on the cold path the root's children are sequential, so
// their durations sum to no more than the root and cover most of it (the
// gap is untimed glue: response assembly, telemetry observation).
func TestQueryTracedSpanAccounting(t *testing.T) {
	eng := demoEngine(t, 20000)
	const src = `SELECT AVG(sessiontime) FROM sessions WHERE city = 'SF' ERROR WITHIN 10%`

	res, tr, err := eng.QueryTraced(src)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || tr == nil {
		t.Fatal("QueryTraced returned nil result or trace")
	}
	root := tr.Root()
	total := root.Duration()
	if total <= 0 {
		t.Fatalf("root duration %v", total)
	}
	var children float64
	for _, c := range root.Children() {
		children += c.Duration().Seconds()
	}
	if children > total.Seconds()*1.001 {
		t.Errorf("sequential children sum %.6fs exceeds root %.6fs:\n%s", children, total.Seconds(), tr.Render())
	}
	if children < total.Seconds()*0.5 {
		t.Errorf("children cover only %.1f%% of the cold root (want most of it):\n%s",
			100*children/total.Seconds(), tr.Render())
	}

	// Same containment one level down: every span's sequential children
	// fit inside it (workers=1 ⇒ no overlapping shard spans here).
	tr.Walk(func(s *telemetry.Span, depth int) {
		var sum float64
		for _, c := range s.Children() {
			sum += c.Duration().Seconds()
		}
		if sum > s.Duration().Seconds()*1.001 {
			t.Errorf("span %q children sum %.6fs exceeds span %.6fs", s.Name(), sum, s.Duration().Seconds())
		}
	})

	// Warm replay: traced too, served from the result cache.
	_, warm, err := eng.QueryTraced(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.Render(), "result=hit") {
		t.Errorf("warm QueryTraced should hit:\n%s", warm.Render())
	}
}

// TestCacheMarkerMatrix sweeps plan-cache {miss,hit,disabled} ×
// result-cache {miss,hit,disabled} through the public API and asserts the
// exact cache=/result= markers of every cell, plus the concurrent
// result-cache {shared} outcome below.
func TestCacheMarkerMatrix(t *testing.T) {
	const rows = 15000
	const q1 = `SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`
	const q2 = `SELECT AVG(sessiontime) FROM sessions WHERE city = 'SF' ERROR WITHIN 10%`

	type step struct {
		src                  string
		wantPlan, wantResult string // "" = no marker allowed
	}
	cases := []struct {
		name                 string
		planSize, resultSize int
		steps                []step
	}{
		{
			name: "both-on", planSize: 0, resultSize: 0,
			steps: []step{
				{q1, "miss", "miss"}, // cold template, cold answer
				{q1, "", "hit"},      // replay: plan pipeline skipped entirely
				{q2, "hit", "miss"},  // fresh constant: template hit, answer miss
			},
		},
		{
			name: "plan-only", planSize: 0, resultSize: -1,
			steps: []step{
				{q1, "miss", ""},
				{q1, "hit", ""}, // replay re-executes, amortized by the plan cache
			},
		},
		{
			name: "result-only", planSize: -1, resultSize: 0,
			steps: []step{
				{q1, "miss", "miss"}, // plan cache disabled reports miss-equivalent "" — see below
				{q1, "", "hit"},
			},
		},
		{
			name: "both-off", planSize: -1, resultSize: -1,
			steps: []step{
				{q1, "", ""},
				{q1, "", ""},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := demoEngineCfg(t, rows, Config{
				Scale: 1e4, Seed: 7, CacheTables: true,
				PlanCacheSize: tc.planSize, ResultCacheSize: tc.resultSize,
			})
			for i, st := range tc.steps {
				wantPlan := st.wantPlan
				if tc.planSize < 0 {
					wantPlan = "" // disabled cache never annotates
				}
				res, err := eng.Query(st.src)
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if res.PlanCache != wantPlan {
					t.Errorf("step %d: PlanCache = %q, want %q", i, res.PlanCache, wantPlan)
				}
				if res.ResultCache != st.wantResult {
					t.Errorf("step %d: ResultCache = %q, want %q", i, res.ResultCache, st.wantResult)
				}
				if wantPlan == "" && strings.Contains(res.Explanation, "cache=") {
					t.Errorf("step %d: unexpected plan marker in %q", i, res.Explanation)
				} else if wantPlan != "" && !strings.Contains(res.Explanation, "cache="+wantPlan) {
					t.Errorf("step %d: EXPLAIN %q missing cache=%s", i, res.Explanation, wantPlan)
				}
				if st.wantResult == "" && strings.Contains(res.Explanation, "result=") {
					t.Errorf("step %d: unexpected result marker in %q", i, res.Explanation)
				} else if st.wantResult != "" && !strings.Contains(res.Explanation, "result="+st.wantResult) {
					t.Errorf("step %d: EXPLAIN %q missing result=%s", i, res.Explanation, st.wantResult)
				}
			}
		})
	}

	// The shared cell needs concurrency: stampede one cold key and check
	// each answer's marker matches its reported outcome exactly, with one
	// miss and the rest hit/shared.
	t.Run("shared", func(t *testing.T) {
		eng := demoEngine(t, rows)
		const goroutines = 8
		results := make([]*Result, goroutines)
		errs := make([]error, goroutines)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				results[g], errs[g] = eng.Query(q1)
			}(g)
		}
		close(start)
		wg.Wait()
		misses := 0
		for g, res := range results {
			if errs[g] != nil {
				t.Fatalf("goroutine %d: %v", g, errs[g])
			}
			switch res.ResultCache {
			case "miss":
				misses++
			case "hit", "shared":
				if res.PlanCache != "" {
					t.Errorf("goroutine %d: served answer leaked PlanCache %q", g, res.PlanCache)
				}
			default:
				t.Errorf("goroutine %d: unexpected outcome %q", g, res.ResultCache)
			}
			if !strings.Contains(res.Explanation, "result="+res.ResultCache) {
				t.Errorf("goroutine %d: EXPLAIN %q missing result=%s", g, res.Explanation, res.ResultCache)
			}
		}
		if misses != 1 {
			t.Errorf("misses = %d, want exactly 1 (singleflight)", misses)
		}
	})
}

// TestTelemetryDisabledBitIdentical replays a query mix through two
// engines differing only in Config.DisableTelemetry and requires deeply
// equal results — estimates, bounds, markers AND simulated latencies.
func TestTelemetryDisabledBitIdentical(t *testing.T) {
	const rows = 15000
	on := demoEngineCfg(t, rows, Config{Scale: 1e4, Seed: 7, CacheTables: true})
	off := demoEngineCfg(t, rows, Config{Scale: 1e4, Seed: 7, CacheTables: true, DisableTelemetry: true})

	queries := []string{
		`SELECT COUNT(*) FROM sessions`,
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`,
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`, // result hit
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'SF' ERROR WITHIN 10%`, // plan hit
		`SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE FROM sessions WHERE city = 'SF' GROUP BY os WITHIN 2 SECONDS`,
	}
	for _, src := range queries {
		a, err := on.Query(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		b, err := off.Query(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("DisableTelemetry changed the answer for %q:\n on %+v\noff %+v", src, a, b)
		}
	}
	if snap := off.Telemetry(); len(snap.Templates) != 0 {
		t.Errorf("disabled engine should report an empty snapshot, got %d templates", len(snap.Templates))
	}
	if snap := on.Telemetry(); len(snap.Templates) == 0 {
		t.Error("enabled engine recorded no templates")
	}
}

// TestEngineTelemetrySnapshot exercises the public histogram surface:
// per-template percentiles are ordered, counts add up, and the bounded
// template carries a predicted-vs-observed bound ratio.
func TestEngineTelemetrySnapshot(t *testing.T) {
	eng := demoEngine(t, 20000)
	const bounded = `SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`
	for i := 0; i < 5; i++ {
		if _, err := eng.Query(bounded); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Query(`SELECT COUNT(*) FROM sessions`); err != nil {
		t.Fatal(err)
	}

	snap := eng.Telemetry()
	if len(snap.Templates) != 2 {
		t.Fatalf("templates = %d, want 2", len(snap.Templates))
	}
	var total uint64
	for _, ts := range snap.Templates {
		total += ts.Queries
		q := ts.Latency
		if !(q.P50 <= q.P95 && q.P95 <= q.P99 && q.P99 <= q.Max) {
			t.Errorf("template %q latency percentiles not monotone: %+v", ts.Key, q)
		}
		if q.Count != ts.Queries {
			t.Errorf("template %q: latency count %d != queries %d", ts.Key, q.Count, ts.Queries)
		}
	}
	if total != 6 {
		t.Errorf("total queries = %d, want 6", total)
	}
	for _, ts := range snap.Templates {
		if !strings.Contains(ts.Key, "ERROR WITHIN") {
			continue
		}
		if ts.PredictedBound.Mean <= 0 {
			t.Error("bounded template should record a positive predicted bound")
		}
		if ts.PredictedOverObservedBound <= 0 {
			t.Error("bounded template should have a predicted/observed bound ratio")
		}
		if ts.Queries != 5 {
			t.Errorf("bounded template queries = %d, want 5", ts.Queries)
		}
	}
}

// TestResultPredictedBound pins the public projection field: positive and
// within two orders of magnitude of the reported half-width for a sampled
// bounded answer; zero for exact execution.
func TestResultPredictedBound(t *testing.T) {
	eng := demoEngine(t, 20000)
	res, err := eng.Query(`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.SampleDescription, "S(") {
		t.Skip("answered from base table; no projection to test")
	}
	if res.PredictedBound <= 0 {
		t.Fatalf("sampled bounded answer should predict a bound, got %g", res.PredictedBound)
	}
	var worst float64
	for _, row := range res.Rows {
		for _, c := range row.Cells {
			if !c.Exact && c.Bound > worst {
				worst = c.Bound
			}
		}
	}
	if worst > 0 && (res.PredictedBound > worst*100 || res.PredictedBound < worst/100) {
		t.Errorf("predicted bound %g wildly off reported %g", res.PredictedBound, worst)
	}

	exact, err := eng.Query(`SELECT COUNT(*) FROM sessions`)
	if err != nil {
		t.Fatal(err)
	}
	if exact.PredictedBound != 0 {
		t.Errorf("exact answer should predict no bound, got %g", exact.PredictedBound)
	}
}

// TestEngineStatsDelta pins the windowed-counters arithmetic on the
// public type.
func TestEngineStatsDelta(t *testing.T) {
	eng := demoEngine(t, 15000)
	const q = `SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10%`
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	base := eng.Stats()
	for i := 0; i < 2; i++ {
		if _, err := eng.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	d := eng.Stats().Delta(base)
	if d.ResultCacheHits != 2 || d.ResultCacheMisses != 0 || d.Prepares != 0 {
		t.Errorf("replay window should be two pure hits: %+v", d)
	}
	if d.PlanExecs != 0 {
		t.Errorf("result hits execute nothing, got %d plan execs", d.PlanExecs)
	}
	if len(d.AnswersByLevel) != 0 {
		t.Errorf("no execution ⇒ no level counts, got %+v", d.AnswersByLevel)
	}
}
