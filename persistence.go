package blinkdb

// Engine persistence: with Config.DataDir set, the engine makes its
// expensive warm state durable across restarts in three layers, all
// built on internal/blockfile segments (CRC-checksummed, atomically
// replaced, mmap-loaded):
//
//  1. Sample segments. CreateSamples persists every built family to
//     DataDir/samples/<table>/ keyed by a build signature over its
//     inputs (table content stats, templates, budget, seed, layout). A
//     warm boot whose CreateSamples call matches the signature loads
//     the families from disk instead of re-running stratification —
//     and because sampling is seeded-deterministic, the loaded
//     families are the ones a rebuild would produce.
//
//  2. The warmup file. SnapshotWarmup writes DataDir/warmup.seg: per-
//     table catalog epochs with content fingerprints, the ELP
//     runtime's prepared templates and cached results, and the serving
//     layer's admission-cost EWMA. RestoreWarmup replays it after the
//     samples are loaded, restoring epochs only when the live content
//     fingerprint matches the snapshot's — a mismatch (anything
//     changed under the snapshot) leaves the warmup entries stale and
//     they are dropped individually, never served.
//
//  3. Everything is fail-soft: a missing, truncated, corrupt or
//     version-skewed file degrades to the cold path with the reason
//     recorded in PersistenceNotes — never a panic, never a wrong
//     answer.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blinkdb/internal/blockfile"
	"blinkdb/internal/catalog"
	"blinkdb/internal/sample"
	"blinkdb/internal/types"
)

const (
	// warmupFileVersion versions the warmup manifest blob.
	warmupFileVersion = 1
	// sampleManifestVersion versions the per-table sample manifest blob.
	sampleManifestVersion = 1
)

// WarmupState carries serving-layer state that rides the warmup file
// but lives outside the engine: the admission controller's per-template
// cost EWMA (internal/admission), owned by blinkdb-server.
type WarmupState struct {
	// AdmissionEWMA maps template keys to learned wall seconds.
	AdmissionEWMA map[string]float64
}

// RestoreReport summarises what RestoreWarmup brought back.
type RestoreReport struct {
	// EpochsRestored counts tables whose catalog epoch was fast-
	// forwarded to the snapshot's (content fingerprints matched).
	EpochsRestored int
	// Plans and Results count restored plan-cache templates and
	// result-cache answers.
	Plans, Results int
	// Warmup holds the serving-layer state for the caller to re-seed.
	Warmup WarmupState
}

// PersistenceNotes returns the reasons persistence fell back to cold
// paths (stale signatures, corrupt files, fingerprint mismatches) since
// the engine was opened — the audit trail behind "clean rebuild, never
// wrong". Empty when everything loaded warm or persistence is off.
func (e *Engine) PersistenceNotes() []string {
	return append([]string(nil), e.persistNotes...)
}

func (e *Engine) noteF(format string, args ...any) {
	e.persistNotes = append(e.persistNotes, fmt.Sprintf(format, args...))
}

// --- build signatures and content fingerprints ------------------------

// hashW is a tiny FNV-1a sink for signature/fingerprint building.
type hashW struct{ h uint64 }

func newHashW() *hashW { return &hashW{h: 14695981039346656037} }

func (w *hashW) bytes(b []byte) {
	for _, c := range b {
		w.h = (w.h ^ uint64(c)) * 1099511628211
	}
}
func (w *hashW) str(s string) {
	var n [8]byte
	putU64(&n, uint64(len(s)))
	w.bytes(n[:])
	w.bytes([]byte(s))
}
func (w *hashW) u64(v uint64) {
	var n [8]byte
	putU64(&n, v)
	w.bytes(n[:])
}
func (w *hashW) i64(v int64)   { w.u64(uint64(v)) }
func (w *hashW) f64(v float64) { w.u64(math.Float64bits(v)) }

func putU64(b *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// sampleSignature hashes everything that determines what CreateSamples
// builds: the base table's identity and content stats, the resolved
// options, and the engine knobs the build config inherits. Matching
// signatures mean a rebuild would reproduce the persisted families
// bit for bit (sampling is seeded-deterministic).
func (e *Engine) sampleSignature(entry *catalog.Entry, opts SampleOptions, blockRows int) uint64 {
	w := newHashW()
	w.str("blinkdb-sample-sig-v1")
	t := entry.Table
	w.str(t.Name)
	w.str(t.Schema.String())
	w.i64(t.NumRows())
	w.i64(t.Bytes())
	w.i64(int64(len(t.Blocks)))
	// Content stats: per-block zones are cheap and content-sensitive.
	for _, b := range t.Blocks {
		w.i64(int64(b.NumRows()))
		w.i64(b.Bytes)
		w.u64(uint64(b.Node))
		for _, z := range b.Zones {
			hashZone(w, z.Valid, z.Min, z.Max)
		}
	}
	w.f64(opts.BudgetFraction)
	w.i64(opts.K)
	w.i64(int64(opts.Resolutions))
	w.f64(opts.CapRatio)
	w.i64(int64(opts.MaxColumns))
	w.f64(opts.UniformFraction)
	w.f64(opts.ChurnFraction)
	for _, tpl := range opts.Templates {
		w.str(types.NewColumnSet(tpl.Columns...).Key())
		w.f64(tpl.Weight)
	}
	w.i64(int64(blockRows))
	w.i64(int64(e.cfg.Nodes))
	w.i64(e.cfg.Seed)
	w.i64(int64(e.cfg.Layout))
	w.i64(int64(e.cfg.Workers))
	return w.h
}

func hashZone(w *hashW, valid bool, min, max types.Value) {
	if !valid {
		w.u64(0)
		return
	}
	w.u64(1)
	for _, v := range [2]types.Value{min, max} {
		w.u64(uint64(v.Kind))
		w.i64(v.I)
		w.f64(v.F)
		w.str(v.S)
	}
}

// tableFingerprint hashes a table's live catalog state — schema, block
// structure, zone contents, and every family's structure and per-block
// zone contents. It is the cheap (no row scan) content check gating
// epoch restore: warmup entries recorded pre-restart epochs, and fast-
// forwarding the live epoch to match is sound only if the state the
// entries were computed against is the state actually loaded.
func tableFingerprint(entry *catalog.Entry) uint64 {
	w := newHashW()
	w.str("blinkdb-table-fp-v1")
	t := entry.Table
	w.str(t.Name)
	w.str(t.Schema.String())
	w.i64(t.NumRows())
	w.i64(t.Bytes())
	for _, b := range t.Blocks {
		w.i64(int64(b.NumRows()))
		w.i64(b.Bytes)
		w.u64(uint64(b.Node))
		for _, z := range b.Zones {
			hashZone(w, z.Valid, z.Min, z.Max)
		}
	}
	fams := append([]*sample.Family(nil), entry.Families...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Phi.Key() < fams[j].Phi.Key() })
	w.i64(int64(len(fams)))
	for _, f := range fams {
		w.str(f.Phi.Key())
		w.i64(int64(len(f.Caps)))
		for _, k := range f.Caps {
			w.i64(k)
		}
		for _, d := range f.Deltas {
			w.i64(d.NumRows())
			w.i64(d.Bytes())
			for _, b := range d.Blocks {
				w.i64(int64(b.NumRows()))
				w.u64(uint64(b.Node))
				for _, z := range b.Zones {
					hashZone(w, z.Valid, z.Min, z.Max)
				}
			}
		}
	}
	return w.h
}

// --- sample segment persistence ---------------------------------------

func (e *Engine) sampleDir(table string) string {
	return filepath.Join(e.cfg.DataDir, "samples", strings.ToLower(table))
}

func (e *Engine) sampleManifestPath(table string) string {
	return filepath.Join(e.sampleDir(table), "MANIFEST.seg")
}

// persistSamples writes every family to its own segment, then the
// manifest last — a crash mid-write leaves either the old manifest
// (pointing at old, still-present segments) or no manifest (cold
// rebuild); never a manifest referencing missing data.
func (e *Engine) persistSamples(table string, sig uint64, fams []*sample.Family, rep *SampleReport) {
	dir := e.sampleDir(table)
	for i, f := range fams {
		path := filepath.Join(dir, fmt.Sprintf("fam%d.seg", i))
		if err := blockfile.WriteSegment(path, func(w *blockfile.Writer) error {
			return sample.WriteFamily(w, f)
		}); err != nil {
			e.noteF("persist samples %s: fam%d: %v", table, i, err)
			return
		}
	}
	var enc blockfile.Enc
	enc.U32(sampleManifestVersion)
	enc.U64(sig)
	enc.I64(rep.BudgetBytes)
	enc.U8(b2u8(rep.Optimal))
	enc.U32(uint32(len(fams)))
	err := blockfile.WriteSegment(e.sampleManifestPath(table), func(w *blockfile.Writer) error {
		w.PutMeta("manifest", enc.Bytes())
		return nil
	})
	if err != nil {
		e.noteF("persist samples %s: manifest: %v", table, err)
		return
	}
	if e.sampleSigs == nil {
		e.sampleSigs = map[string]uint64{}
	}
	e.sampleSigs[strings.ToLower(table)] = sig
}

// loadPersistedSamples loads the table's families from DataDir when the
// persisted build signature matches sig. All-or-nothing: families reach
// the catalog only after every segment loaded and validated; any
// failure degrades to a cold rebuild with the reason noted.
func (e *Engine) loadPersistedSamples(table string, sig uint64) (*SampleReport, bool) {
	mseg, err := blockfile.Open(e.sampleManifestPath(table))
	if err != nil {
		if !os.IsNotExist(err) {
			e.noteF("load samples %s: manifest: %v", table, err)
		}
		return nil, false
	}
	defer mseg.Close()
	blob, ok := mseg.Meta("manifest")
	if !ok {
		e.noteF("load samples %s: manifest blob missing", table)
		return nil, false
	}
	d := blockfile.NewDec(blob)
	ver := d.U32()
	storedSig := d.U64()
	budget := d.I64()
	optimal := d.U8() != 0
	nfams := d.Count(0)
	if err := d.Err(); err != nil || ver != sampleManifestVersion {
		e.noteF("load samples %s: manifest corrupt or version %d", table, ver)
		return nil, false
	}
	if storedSig != sig {
		e.noteF("load samples %s: build signature changed (stored %x, want %x) — rebuilding", table, storedSig, sig)
		return nil, false
	}

	fams := make([]*sample.Family, 0, nfams)
	segs := make([]*blockfile.Segment, 0, nfams)
	closeSegs := func() {
		for _, s := range segs {
			s.Close()
		}
	}
	var total int64
	for i := 0; i < nfams; i++ {
		path := filepath.Join(e.sampleDir(table), fmt.Sprintf("fam%d.seg", i))
		seg, err := blockfile.Open(path)
		if err != nil {
			e.noteF("load samples %s: fam%d: %v — rebuilding", table, i, err)
			closeSegs()
			return nil, false
		}
		segs = append(segs, seg)
		fam, err := sample.ReadFamily(seg)
		if err == nil {
			err = fam.Validate()
		}
		if err != nil {
			e.noteF("load samples %s: fam%d: %v — rebuilding", table, i, err)
			closeSegs()
			return nil, false
		}
		fams = append(fams, fam)
	}
	// Loaded columns are zero-copy views into the (usually mmap'd)
	// segments, so the segments must outlive the families: they stay
	// open for the engine's lifetime and unmap on Engine.Close.
	e.openSegs = append(e.openSegs, segs...)
	rep := &SampleReport{BudgetBytes: budget, Optimal: optimal}
	for _, f := range fams {
		if err := e.cat.AddFamily(table, f); err != nil {
			e.noteF("load samples %s: register: %v", table, err)
			return nil, false
		}
		rep.Families = append(rep.Families, FamilyInfo{
			Columns:      f.Phi.Columns(),
			StorageBytes: f.StorageBytes(),
			Rows:         f.StorageRows(),
			Resolutions:  f.Resolutions(),
		})
		total += f.StorageBytes()
	}
	rep.TotalBytes = total
	if e.sampleSigs == nil {
		e.sampleSigs = map[string]uint64{}
	}
	e.sampleSigs[strings.ToLower(table)] = sig
	return rep, true
}

// --- warmup snapshot / restore ----------------------------------------

func (e *Engine) warmupPath() string {
	return filepath.Join(e.cfg.DataDir, "warmup.seg")
}

// SnapshotWarmup persists the engine's warm state to DataDir: current
// sample families (re-persisted, so refreshes survive restarts), per-
// table epochs with content fingerprints, prepared-template probe
// state, cached results with their original TTL deadlines, and the
// caller's WarmupState. Safe to call concurrently with queries — it
// sees a snapshot-quality view. No-op error when DataDir is unset.
func (e *Engine) SnapshotWarmup(st WarmupState) error {
	if e.cfg.DataDir == "" {
		return fmt.Errorf("blinkdb: SnapshotWarmup requires Config.DataDir")
	}
	// Re-persist families for every table that went through
	// CreateSamples, under the signature recorded then: a family
	// refreshed since (RefreshSamples, Maintain) replaces its segment,
	// so the next warm boot resumes from the refreshed state the
	// warmup entries were computed against.
	for table, sig := range e.sampleSigs {
		entry, err := e.cat.Lookup(table)
		if err != nil {
			continue
		}
		rep := &SampleReport{Optimal: true}
		for _, f := range entry.Families {
			rep.TotalBytes += f.StorageBytes()
		}
		if prev, ok := e.sampleReports[table]; ok {
			rep = prev
		}
		e.persistSamples(table, sig, entry.Families, rep)
	}

	var manifest blockfile.Enc
	manifest.U32(warmupFileVersion)
	tables := e.cat.Tables()
	manifest.U32(uint32(len(tables)))
	for _, name := range tables {
		entry, err := e.cat.Lookup(name)
		if err != nil {
			return err
		}
		manifest.Str(name)
		manifest.U64(entry.Epoch)
		manifest.U64(tableFingerprint(entry))
	}

	var adm blockfile.Enc
	keys := make([]string, 0, len(st.AdmissionEWMA))
	for k := range st.AdmissionEWMA {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	adm.U32(uint32(len(keys)))
	for _, k := range keys {
		adm.Str(k)
		adm.F64(st.AdmissionEWMA[k])
	}

	elpBlob := e.rt.ExportWarmup()
	return blockfile.WriteSegment(e.warmupPath(), func(w *blockfile.Writer) error {
		w.PutMeta("manifest", manifest.Bytes())
		w.PutMeta("elp", elpBlob)
		w.PutMeta("admission", adm.Bytes())
		return nil
	})
}

// RestoreWarmup replays DataDir/warmup.seg into the engine: catalog
// epochs fast-forward where content fingerprints match, then the plan
// and result caches re-fill from the snapshot (entries that no longer
// validate are dropped individually). Call it AFTER tables are loaded
// and CreateSamples ran. A missing file returns (nil, nil) — a normal
// cold boot; corrupt files degrade to (nil, nil) with the reason in
// PersistenceNotes. Never panics, never restores state it cannot
// validate.
func (e *Engine) RestoreWarmup() (*RestoreReport, error) {
	if e.cfg.DataDir == "" {
		return nil, fmt.Errorf("blinkdb: RestoreWarmup requires Config.DataDir")
	}
	seg, err := blockfile.Open(e.warmupPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		e.noteF("restore warmup: %v — cold boot", err)
		return nil, nil
	}
	defer seg.Close()

	rep := &RestoreReport{}
	blob, ok := seg.Meta("manifest")
	if !ok {
		e.noteF("restore warmup: manifest missing — cold boot")
		return nil, nil
	}
	d := blockfile.NewDec(blob)
	if ver := d.U32(); d.Err() != nil || ver != warmupFileVersion {
		e.noteF("restore warmup: manifest version %d (want %d) — cold boot", ver, warmupFileVersion)
		return nil, nil
	}
	// validated collects tables whose live content fingerprint matches
	// the snapshot's. Only their epochs fast-forward, and only entries
	// depending exclusively on them restore: a snapshot epoch can
	// numerically alias a rebuilt epoch over different content, so
	// epoch equality alone proves nothing across a restart.
	validated := map[string]bool{}
	ntables := d.Count(1)
	for i := 0; i < ntables; i++ {
		name := d.Str()
		epoch := d.U64()
		fp := d.U64()
		if d.Err() != nil {
			break
		}
		entry, err := e.cat.Lookup(name)
		if err != nil {
			e.noteF("restore warmup: table %q not loaded — entries will drop", name)
			continue
		}
		if tableFingerprint(entry) != fp {
			e.noteF("restore warmup: table %q content changed since snapshot — entries will drop", name)
			continue
		}
		if e.cat.RestoreEpoch(name, epoch) {
			validated[strings.ToLower(name)] = true
			rep.EpochsRestored++
		}
	}
	if err := d.Err(); err != nil {
		e.noteF("restore warmup: manifest truncated: %v", err)
		return nil, nil
	}

	if blob, ok := seg.Meta("elp"); ok {
		plans, results, err := e.rt.ImportWarmup(blob, func(table string) bool {
			return validated[strings.ToLower(table)]
		})
		if err != nil {
			e.noteF("restore warmup: elp state: %v — caches warm lazily", err)
		}
		rep.Plans, rep.Results = plans, results
	}

	if blob, ok := seg.Meta("admission"); ok {
		d := blockfile.NewDec(blob)
		n := d.Count(5)
		m := make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k := d.Str()
			v := d.F64()
			if d.Err() != nil {
				break
			}
			m[k] = v
		}
		if err := d.Err(); err != nil {
			e.noteF("restore warmup: admission ewma corrupt: %v", err)
		} else {
			rep.Warmup.AdmissionEWMA = m
		}
	}
	return rep, nil
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
