module blinkdb

go 1.22
