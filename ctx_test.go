package blinkdb

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// TestQueryCtxAlreadyCancelled pins the serving contract a disconnected
// client relies on: a dead context returns promptly with ctx.Err() and
// zero scanning — no prepare, no executor invocation, no answer counted.
func TestQueryCtxAlreadyCancelled(t *testing.T) {
	eng := demoEngine(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.QueryCtx(ctx,
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 5% AT CONFIDENCE 95%`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled query still produced a result (RowsScanned=%d)", res.RowsScanned)
	}
	s := eng.Stats()
	if s.PlanExecs != 0 || s.Prepares != 0 {
		t.Errorf("cancelled query scanned: PlanExecs=%d Prepares=%d, want 0/0", s.PlanExecs, s.Prepares)
	}
	if s.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", s.Cancelled)
	}
	if len(s.AnswersByLevel) != 0 {
		t.Errorf("cancelled query counted as an answer: %v", s.AnswersByLevel)
	}
}

// TestQueryCtxCancelMidSession cancels from inside a streaming session's
// emit callback — deterministic "client disconnects mid-query": the
// session stops before its final scan and reports the cancellation.
func TestQueryCtxCancelMidSession(t *testing.T) {
	eng := demoEngine(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sawFinal := false
	err := eng.QueryStream(ctx,
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 5% AT CONFIDENCE 95%`,
		func(u StreamUpdate) error {
			if u.Final {
				sawFinal = true
			}
			cancel()
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sawFinal {
		t.Error("cancelled session still delivered a final update")
	}
	if s := eng.Stats(); s.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", s.Cancelled)
	}
}

// TestQueryCtxConcurrentCancelRaceClean races queries against immediate
// cancellation: every outcome must be either a complete answer or a clean
// cancellation error — never a torn result — and the books must balance
// (answers + cancellations = queries). Run under -race in CI.
func TestQueryCtxConcurrentCancelRaceClean(t *testing.T) {
	eng := demoEngine(t, 20000)
	const queries = 16
	var wg sync.WaitGroup
	results := make([]*Result, queries)
	errs := make([]error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			if i%2 == 0 {
				cancel() // half die before the call, half race it
			} else {
				go cancel()
			}
			defer cancel()
			results[i], errs[i] = eng.QueryCtx(ctx,
				`SELECT AVG(sessiontime) FROM sessions GROUP BY os ERROR WITHIN 10%`)
		}(i)
	}
	wg.Wait()
	completed := 0
	for i := 0; i < queries; i++ {
		switch {
		case errs[i] == nil:
			completed++
			if results[i] == nil || len(results[i].Rows) == 0 {
				t.Errorf("query %d: nil error but empty result", i)
			}
		case errors.Is(errs[i], context.Canceled):
			if results[i] != nil {
				t.Errorf("query %d: cancellation error but non-nil result", i)
			}
		default:
			t.Errorf("query %d: unexpected error %v", i, errs[i])
		}
	}
	s := eng.Stats()
	var answers int64
	for _, n := range s.AnswersByLevel {
		answers += n
	}
	if answers != int64(completed) {
		t.Errorf("AnswersByLevel total %d, but %d queries completed", answers, completed)
	}
	if s.Cancelled != int64(queries-completed) {
		t.Errorf("Cancelled = %d, want %d", s.Cancelled, queries-completed)
	}
}

// TestQueryStreamFinalMatchesQuery pins the public streaming contract:
// the Final update is bit-identical — latencies, cache markers,
// explanations — to Engine.Query on a twin engine (demoEngine is
// deterministic per seed).
func TestQueryStreamFinalMatchesQuery(t *testing.T) {
	stream, serial := demoEngine(t, 20000), demoEngine(t, 20000)
	const sql = `SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 5% AT CONFIDENCE 95%`
	want, err := serial.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	var updates []StreamUpdate
	if err := stream.QueryStream(context.Background(), sql, func(u StreamUpdate) error {
		updates = append(updates, u)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("no updates")
	}
	for i, u := range updates {
		if u.Seq != i || u.Final != (i == len(updates)-1) {
			t.Errorf("malformed update sequence at %d: seq=%d final=%v", i, u.Seq, u.Final)
		}
	}
	final := updates[len(updates)-1]
	if !reflect.DeepEqual(final.Result, want) {
		t.Errorf("final update diverges from Query:\n got %+v\nwant %+v", final.Result, want)
	}
	if final.Result.Level != final.Level {
		t.Errorf("Result.Level %d != update Level %d", final.Result.Level, final.Level)
	}
}
