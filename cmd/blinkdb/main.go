// Command blinkdb is an interactive shell for BlinkDB-Go. It loads a
// synthetic dataset (Conviva-like session log or TPC-H lineitem), builds
// the optimizer-chosen sample families, and answers ad-hoc bounded queries
// from stdin:
//
//	$ blinkdb -dataset conviva -rows 100000
//	blinkdb> SELECT COUNT(*) FROM sessions WHERE country = 'country02'
//	         ERROR WITHIN 10% AT CONFIDENCE 95%;
//
// Each answer is annotated with its confidence interval, the sample that
// produced it, and the latency attributed by the simulated 100-node
// cluster.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"

	"blinkdb/internal/catalog"
	"blinkdb/internal/cluster"
	"blinkdb/internal/elp"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/telemetry"
	"blinkdb/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "conviva", "conviva or tpch")
		rows    = flag.Int("rows", 100000, "fact table rows")
		budget  = flag.Float64("budget", 0.5, "sample storage budget as a fraction of the table")
		seed    = flag.Int64("seed", 42, "random seed")
		scale   = flag.Float64("tb", 17, "pretend logical dataset size in TB (latency model)")
	)
	flag.Parse()

	if err := run(*dataset, *rows, *budget, *seed, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "blinkdb:", err)
		os.Exit(1)
	}
}

func run(dataset string, rows int, budget float64, seed int64, tb float64) error {
	fmt.Printf("loading %s dataset (%d rows)...\n", dataset, rows)
	gen := func(rowsPerBlock int) (*workload.Dataset, error) {
		switch dataset {
		case "conviva":
			return workload.Conviva(workload.ConvivaConfig{Rows: rows, Seed: seed, RowsPerBlock: rowsPerBlock}), nil
		case "tpch":
			return workload.TPCH(workload.TPCHConfig{Rows: rows, Seed: seed, RowsPerBlock: rowsPerBlock}), nil
		default:
			return nil, fmt.Errorf("unknown dataset %q", dataset)
		}
	}
	// Size blocks so one physical block ≈ one 256 MB HDFS block at the
	// pretend scale (two passes: measure row width, then rebuild).
	data, err := gen(512)
	if err != nil {
		return err
	}
	scale := tb * 1e12 / float64(data.Table.Bytes())
	avgRow := float64(data.Table.Bytes()) / float64(data.Table.NumRows())
	blockRows := int(256e6 / (scale * avgRow))
	if blockRows < 2 {
		blockRows = 2
	}
	if blockRows > 4096 {
		blockRows = 4096
	}
	if data, err = gen(blockRows); err != nil {
		return err
	}

	k := int64(rows / 200)
	if k < 64 {
		k = 64
	}
	cfg := optimizer.Config{
		K: k, CapRatio: 2, Resolutions: 8, MinCap: 2,
		BudgetBytes: int64(float64(data.Table.Bytes()) * budget),
		ChurnFrac:   -1,
		Build: sample.BuildConfig{
			RowsPerBlock: blockRows, Nodes: 100, Place: storage.InMemory, Seed: seed,
		},
	}
	fmt.Printf("solving sample-selection MILP (budget %.0f%% of table)...\n", budget*100)
	plan, err := optimizer.ChooseSamples(data.Table, data.OptimizerTemplates(), cfg)
	if err != nil {
		return err
	}
	fams, err := optimizer.BuildFamilies(data.Table, plan, cfg, 0.2)
	if err != nil {
		return err
	}
	cat := catalog.New()
	cat.Register(data.Table)
	for _, f := range fams {
		if err := cat.AddFamily(data.Table.Name, f); err != nil {
			return err
		}
		fmt.Printf("  built %s (%d rows, %.1f%% of table)\n",
			f, f.StorageRows(), 100*float64(f.StorageBytes())/float64(data.Table.Bytes()))
	}

	clus := cluster.New(cluster.PaperConfig())
	reg := telemetry.NewRegistry()
	rt := elp.New(cat, clus, elp.Options{
		Scale:             scale,
		ProbeOverheadOnly: true,
		Workers:           runtime.GOMAXPROCS(0),
		// Interactive sessions are template-heavy (users tweak constants
		// and bounds on the same query); cache prepared templates so
		// replays skip the probe work, and cache completed answers so
		// re-running the exact same query (a very common REPL gesture) is
		// instant. EXPLAIN output shows cache=hit|miss and
		// result=hit|miss|shared.
		PlanCacheSize:   256,
		ResultCacheSize: 1024,
		Telemetry:       reg,
	})

	fmt.Printf("\ntable %q ready; pretending it is %.0f TB on a 100-node cluster.\n", data.Table.Name, tb)
	fmt.Println(`enter SQL (end with ';'), e.g.:
  SELECT COUNT(*) FROM ` + data.Table.Name + ` ERROR WITHIN 10% AT CONFIDENCE 95%;
  SELECT AVG(sessiontimems) FROM sessions WHERE country = 'country02' GROUP BY endedflag WITHIN 5 SECONDS;
backslash commands: \stats  \trace on|off  \stream on|off  \help`)

	sh := &shell{rt: rt, reg: reg}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("blinkdb> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		// Backslash commands are line-oriented: only recognized when no
		// SQL statement is in progress, and they never need a ';'.
		if buf.Len() == 0 && strings.HasPrefix(strings.TrimSpace(line), `\`) {
			if err := sh.command(strings.TrimSpace(line)); err != nil {
				fmt.Println("error:", err)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("      -> ")
			continue
		}
		src := strings.TrimSpace(buf.String())
		buf.Reset()
		if src == ";" || src == "" {
			prompt()
			continue
		}
		if err := sh.execute(src); err != nil {
			fmt.Println("error:", err)
		}
		prompt()
	}
	fmt.Println()
	return scanner.Err()
}

// shell holds REPL state that outlives a single statement: the runtime,
// the telemetry registry, the \trace toggle, and the stats baseline from
// the previous \stats call (so each \stats also shows a delta window).
type shell struct {
	rt        *elp.Runtime
	reg       *telemetry.Registry
	tracing   bool
	streaming bool
	prev      elp.Stats
	hasPrev   bool
}

// command dispatches a backslash command.
func (sh *shell) command(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\stats`:
		sh.printStats()
		return nil
	case `\trace`:
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			return fmt.Errorf(`usage: \trace on|off`)
		}
		sh.tracing = fields[1] == "on"
		fmt.Printf("  tracing %s\n", fields[1])
		return nil
	case `\stream`:
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			return fmt.Errorf(`usage: \stream on|off`)
		}
		sh.streaming = fields[1] == "on"
		fmt.Printf("  streaming %s\n", fields[1])
		return nil
	case `\help`, `\h`, `\?`:
		sh.printHelp()
		return nil
	default:
		return fmt.Errorf(`unknown command %s (try \help)`, fields[0])
	}
}

// printHelp lists backslash commands and the bound-clause grammar.
func (sh *shell) printHelp() {
	fmt.Print(`  \stats           serving counters, cache hit rates, top templates by p99
  \trace on|off    print the query-lifecycle span tree after each answer
  \stream on|off   stream refinements: one line per resolution along the
                   delta chain, final answer printed in full (the final is
                   bit-identical to the non-streaming answer)
  \help            this text

  bound clauses (either order, at the end of a query):
    ERROR WITHIN 10% AT CONFIDENCE 95%    relative error bound
    ERROR WITHIN 500                      absolute error bound
    WITHIN 5 SECONDS                      response-time bound
  prefix a query with EXPLAIN ANALYZE to capture its span tree.
`)
}

// printStats shows cumulative serving counters, the delta since the last
// \stats, and the top templates by p99 latency.
func (sh *shell) printStats() {
	cur := sh.rt.Stats()
	fmt.Printf("  queries: plan execs %d (probes %d), prepares %d\n",
		cur.PlanExecs, cur.ProbeExecs, cur.Prepares)
	fmt.Printf("  plan cache: %d hits / %d misses (%.0f%% hit rate)\n",
		cur.CacheHits, cur.CacheMisses, 100*cur.HitRate())
	fmt.Printf("  result cache: %d hits / %d misses / %d shared (%.0f%% served without executing)\n",
		cur.ResultHits, cur.ResultMisses, cur.ResultShared, 100*cur.ResultHitRate())
	if len(cur.AnswersByLevel) > 0 {
		fmt.Print("  answers by level:")
		levels := make([]int, 0, len(cur.AnswersByLevel))
		for l := range cur.AnswersByLevel {
			levels = append(levels, l)
		}
		sort.Ints(levels)
		for _, l := range levels {
			name := fmt.Sprintf("L%d", l)
			if l == -1 {
				name = "base"
			}
			fmt.Printf(" %s=%d", name, cur.AnswersByLevel[l])
		}
		fmt.Println()
	}
	if sh.hasPrev {
		d := cur.Delta(sh.prev)
		fmt.Printf("  since last \\stats: %d execs, plan cache %d/%d, result cache %d/%d/%d\n",
			d.PlanExecs, d.CacheHits, d.CacheMisses, d.ResultHits, d.ResultMisses, d.ResultShared)
	}
	sh.prev, sh.hasPrev = cur, true

	snap := sh.reg.Snapshot()
	if len(snap.Templates) == 0 {
		fmt.Println("  no per-template telemetry yet")
		return
	}
	sort.Slice(snap.Templates, func(i, j int) bool {
		return snap.Templates[i].Latency.P99 > snap.Templates[j].Latency.P99
	})
	top := snap.Templates
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Println("  top templates by p99 latency:")
	for _, t := range top {
		fmt.Printf("    %6d q  p50 %7.3fms  p95 %7.3fms  p99 %7.3fms  pred/obs bound %.2f  %s\n",
			t.Queries, t.Latency.P50*1e3, t.Latency.P95*1e3, t.Latency.P99*1e3,
			t.PredictedOverObservedBound, compactKey(t.Key))
	}
}

// compactKey trims a normalized template key for one-line display.
func compactKey(key string) string {
	key = strings.Join(strings.Fields(key), " ")
	if len(key) > 88 {
		key = key[:85] + "..."
	}
	return key
}

func (sh *shell) execute(src string) error {
	q, err := sqlparser.Parse(src)
	if err != nil {
		return err
	}
	var tr *telemetry.Trace
	if sh.tracing || q.Analyze {
		tr = telemetry.New("query")
	}
	var resp *elp.Response
	if sh.streaming {
		err = sh.rt.RunStreamTraced(context.Background(), q, tr, func(r elp.Refinement) error {
			if r.Final {
				resp = r.Resp
				return nil
			}
			fmt.Printf("  ~ refinement %d (L%d): %d groups, worst rel err %.1f%%, sim latency %.2fs\n",
				r.Seq, r.Level, len(r.Resp.Result.Groups),
				100*worstRelErr(r.Resp), r.Resp.SimLatency)
			return nil
		})
	} else {
		resp, err = sh.rt.RunTraced(q, tr)
	}
	tr.Finish()
	if err != nil {
		return err
	}
	for _, g := range resp.Result.Groups {
		fmt.Printf("  %-24s", g.KeyString())
		for i, e := range g.Estimates {
			name := ""
			if i < len(q.Aggs) {
				name = q.Aggs[i].Alias
			}
			if e.Exact {
				fmt.Printf("  %s = %.4g (exact)", name, e.Point)
			} else {
				fmt.Printf("  %s = %.4g ± %.3g (%.0f%% conf, %.1f%% rel)",
					name, e.Point, e.Bound, resp.Confidence*100, 100*e.RelErr())
			}
		}
		fmt.Println()
	}
	if len(resp.Result.Groups) == 0 {
		fmt.Println("  (no rows)")
	}
	for _, d := range resp.Decisions {
		src := "base table"
		if !d.UsedBase {
			src = d.View.String()
		}
		fmt.Printf("  [%s; %s]\n", src, d.Reason)
	}
	fmt.Printf("  simulated latency: %.2fs; scanned %d sample rows\n",
		resp.SimLatency, resp.Result.RowsScanned)
	if tr != nil {
		fmt.Print(tr.Render())
	}
	return nil
}

// worstRelErr is the worst finite relative error across a response's
// estimates (0 when every cell is exact or empty).
func worstRelErr(resp *elp.Response) float64 {
	worst := 0.0
	for _, g := range resp.Result.Groups {
		for _, e := range g.Estimates {
			if re := e.RelErr(); re > worst && !math.IsInf(re, 1) {
				worst = re
			}
		}
	}
	return worst
}
