// Command blinkdb-server serves a BlinkDB engine over HTTP/JSON: bounded
// queries as single answers, streaming-refinement sessions as NDJSON or
// SSE, with ELP-priced admission control shedding overload before any
// scanning happens (429 + Retry-After) and graceful drain on SIGTERM.
//
//	$ blinkdb-server -rows 100000 -addr :8080 -data /var/lib/blinkdb
//	$ curl -s localhost:8080/query -d \
//	    '{"sql": "SELECT AVG(sessiontimems) FROM sessions GROUP BY os", "error": "10%", "stream": true}'
//
// With -data set, sample families and warm cache state persist across
// restarts: the listener comes up immediately with /healthz reporting
// "warming" (503), flips to "ok" once samples and warmup state have
// loaded, and the warm state re-snapshots periodically and on drain.
//
// See cmd/blinkdb-server/README.md for the endpoint reference.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blinkdb"
	"blinkdb/internal/admission"
	"blinkdb/internal/loadgen"
	"blinkdb/internal/server"
)

type options struct {
	addr       string
	rows       int
	budget     float64
	seed       int64
	scale      float64
	maxConc    int
	maxQueue   int
	maxBacklog float64
	data       string
	snapEvery  time.Duration
	selfcheck  bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.rows, "rows", 100000, "fact table rows")
	flag.Float64Var(&o.budget, "budget", 0.5, "sample storage budget as a fraction of the table")
	flag.Int64Var(&o.seed, "seed", 42, "random seed")
	flag.Float64Var(&o.scale, "scale", 1e4, "stored-to-logical byte scale (latency model)")
	flag.IntVar(&o.maxConc, "max-concurrent", 1, "queries executing at once")
	flag.IntVar(&o.maxQueue, "max-queue", 16, "queued queries before shedding")
	flag.Float64Var(&o.maxBacklog, "max-backlog-seconds", 30, "predicted backlog seconds before shedding (negative disables)")
	flag.StringVar(&o.data, "data", "", "persistence directory for sample segments and warmup state (empty disables)")
	flag.DurationVar(&o.snapEvery, "snapshot-interval", time.Minute, "how often to re-snapshot warm state to -data (0 disables periodic snapshots)")
	flag.BoolVar(&o.selfcheck, "selfcheck", false, "start on a loopback port, run an end-to-end smoke (including kill+restart+diff), exit")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "blinkdb-server:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.selfcheck {
		return runSelfcheck(o)
	}

	// The listener comes up before any data loads: readiness is what
	// /healthz reports, not whether the port answers.
	eng := openEngine(o)
	defer eng.Close()
	srv := server.New(eng, server.Config{
		Warming:   true,
		Admission: admissionConfig(o),
	})
	hs := &http.Server{Addr: o.addr, Handler: srv}
	// SIGTERM/SIGINT starts a graceful drain: the listener closes, queued
	// admissions keep their place, in-flight queries (and their streams)
	// run to completion, the warm state snapshots, then the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s (POST /query, GET /healthz, GET /stats); warming...\n", o.addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	boot := time.Now()
	if err := warmEngine(eng, srv, o); err != nil {
		return err
	}
	srv.SetReady()
	fmt.Printf("ready in %.3fs\n", time.Since(boot).Seconds())

	snapshot := func() {
		if o.data == "" {
			return
		}
		if err := eng.SnapshotWarmup(blinkdb.WarmupState{
			AdmissionEWMA: srv.ExportAdmissionEWMA(),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "snapshot warmup:", err)
		}
	}
	if o.data != "" && o.snapEvery > 0 {
		ticker := time.NewTicker(o.snapEvery)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-ticker.C:
					snapshot()
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("signal received; draining in-flight queries...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	snapshot() // final snapshot: the next boot starts warm
	fmt.Println("drained; bye")
	return nil
}

func admissionConfig(o options) admission.Config {
	return admission.Config{
		MaxConcurrent:     o.maxConc,
		MaxQueue:          o.maxQueue,
		MaxBacklogSeconds: o.maxBacklog,
	}
}

func openEngine(o options) *blinkdb.Engine {
	return blinkdb.Open(blinkdb.Config{
		Scale: o.scale, Seed: o.seed, CacheTables: true, DataDir: o.data,
	})
}

// warmEngine loads the sessions table, builds (or warm-loads) the sample
// families, and restores persisted warmup state into the caches and the
// admission controller. Runs behind the live listener while /healthz
// reports "warming".
func warmEngine(eng *blinkdb.Engine, srv *server.Server, o options) error {
	fmt.Printf("loading sessions dataset (%d rows)...\n", o.rows)
	if err := loadSessions(eng, o.rows, o.seed); err != nil {
		return err
	}
	if err := buildSamples(eng, o.budget); err != nil {
		return err
	}
	if o.data != "" {
		rep, err := eng.RestoreWarmup()
		if err != nil {
			return err
		}
		if rep != nil {
			if srv != nil {
				srv.ImportAdmissionEWMA(rep.Warmup.AdmissionEWMA)
			}
			fmt.Printf("  warmup restored: %d table epochs, %d plans, %d results, %d admission costs\n",
				rep.EpochsRestored, rep.Plans, rep.Results, len(rep.Warmup.AdmissionEWMA))
		}
		for _, note := range eng.PersistenceNotes() {
			fmt.Println("  persistence:", note)
		}
	}
	return nil
}

// loadSessions fills a Conviva-shaped sessions table through the public
// engine API. Deterministic per (rows, seed): two engines built with the
// same arguments answer bit-identically, which is what the selfcheck's
// library-mode and restart comparisons rely on.
func loadSessions(eng *blinkdb.Engine, rows int, seed int64) error {
	load := eng.CreateTable("sessions",
		blinkdb.Col("city", blinkdb.String),
		blinkdb.Col("os", blinkdb.String),
		blinkdb.Col("genre", blinkdb.String),
		blinkdb.Col("sessiontimems", blinkdb.Float),
		blinkdb.Col("bufferingms", blinkdb.Float),
	)
	rng := rand.New(rand.NewSource(seed))
	oses := []string{"Win7", "OSX", "WinXP", "Linux", "iOS", "Android"}
	genres := []string{"western", "drama", "news", "sports"}
	zipfCity := rand.NewZipf(rng, 1.5, 1, 11)
	for i := 0; i < rows; i++ {
		city := fmt.Sprintf("city%03d", zipfCity.Uint64())
		if err := load.Append(
			city, oses[rng.Intn(len(oses))], genres[rng.Intn(len(genres))],
			rng.ExpFloat64()*120000, rng.ExpFloat64()*800,
		); err != nil {
			return err
		}
	}
	return load.Close()
}

// buildSamples builds city/os-stratified sample families — or, when the
// engine has a data directory holding segments for this exact build
// signature, loads them from disk instead of re-stratifying.
func buildSamples(eng *blinkdb.Engine, budget float64) error {
	rep, err := eng.CreateSamples("sessions", blinkdb.SampleOptions{
		BudgetFraction: budget,
		K:              2000,
		Templates: []blinkdb.Template{
			{Columns: []string{"city"}, Weight: 0.6},
			{Columns: []string{"os"}, Weight: 0.4},
		},
	})
	if err != nil {
		return err
	}
	for _, f := range rep.Families {
		fmt.Printf("  sample family %v (%d rows, %d resolutions)\n",
			f.Columns, f.Rows, f.Resolutions)
	}
	return nil
}

// buildEngine is the selfcheck's twin constructor: open, load, sample,
// restore — everything the serving path does, synchronously.
func buildEngine(o options) (*blinkdb.Engine, error) {
	eng := openEngine(o)
	if err := warmEngine(eng, nil, o); err != nil {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

// runSelfcheck is the CI end-to-end smoke: serve on a loopback port,
// verify the warming→ready /healthz transition, stream one bounded query
// over real HTTP and compare the final frame against library mode on a
// twin engine, then restart against a persistence directory and verify
// the reborn server answers byte-identically from its restored caches.
func runSelfcheck(o options) error {
	eng, err := buildEngine(o)
	if err != nil {
		return err
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{Warming: true, Admission: admissionConfig(o)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Warming gate: not ready until SetReady, ready after.
	if status, err := healthz(base); err != nil || status != "warming" {
		return fmt.Errorf("healthz while warming: %q, %v (want warming)", status, err)
	}
	srv.SetReady()
	if status, err := healthz(base); err != nil || status != "ok" {
		return fmt.Errorf("healthz when ready: %q, %v (want ok)", status, err)
	}

	// Stream a bounded query and validate the frames.
	const sql = `SELECT AVG(sessiontimems) FROM sessions WHERE city = 'city001' ERROR WITHIN 5% AT CONFIDENCE 95%`
	frames, err := streamFrames(base, sql)
	if err != nil {
		return err
	}
	if len(frames) < 2 {
		return fmt.Errorf("want at least one refinement before the final answer, got %d frame(s)", len(frames))
	}
	for i, f := range frames {
		if f.Error != "" {
			return fmt.Errorf("frame %d carries error %q", i, f.Error)
		}
		if f.Seq != i || f.Final != (i == len(frames)-1) || f.Result == nil {
			return fmt.Errorf("malformed frame sequence at %d: %+v", i, f)
		}
	}

	// The final frame must match library mode on a twin engine built with
	// the same arguments (floats survive the JSON round trip exactly).
	twin, err := buildEngine(o)
	if err != nil {
		return err
	}
	defer twin.Close()
	want, err := twin.Query(sql)
	if err != nil {
		return err
	}
	if err := diffFinalFrame(frames[len(frames)-1].Result, want); err != nil {
		return err
	}

	// Stats must show the admissions.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats struct {
		Engine struct {
			Admitted int64 `json:"Admitted"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	if stats.Engine.Admitted < 1 {
		return fmt.Errorf("stats report no admissions")
	}
	fmt.Printf("selfcheck ok: %d frames, final matches library mode\n", len(frames))

	if err := selfcheckRestart(o, sql); err != nil {
		return err
	}
	return selfcheckRestartUnderLoad(o, sql)
}

// selfcheckRestart is the persistence leg: serve against a data
// directory, warm the caches, snapshot, tear the whole stack down, boot
// a successor over the same directory, and require its first answer to
// be identical to the predecessor's warm answer — result-cache hit
// marker, simulated latency, and error bars included.
func selfcheckRestart(o options, sql string) error {
	dir, err := os.MkdirTemp("", "blinkdb-selfcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	o.data = dir

	// Life 1: build cold, warm the caches with two queries, snapshot.
	serveQuery := func(label string) (json.RawMessage, *server.Server, *blinkdb.Engine, func(), error) {
		eng, err := buildEngine(o)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		srv := server.New(eng, server.Config{Admission: admissionConfig(o)})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			eng.Close()
			return nil, nil, nil, nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		stop := func() { hs.Close(); eng.Close() }
		base := "http://" + ln.Addr().String()
		var last json.RawMessage
		for i := 0; i < 2; i++ { // second pass: plan AND result caches hot
			last, err = singleFrame(base, sql)
			if err != nil {
				stop()
				return nil, nil, nil, nil, fmt.Errorf("%s query %d: %w", label, i, err)
			}
		}
		return last, srv, eng, stop, nil
	}

	warm, srv1, eng1, stop1, err := serveQuery("life-1")
	if err != nil {
		return err
	}
	if err := eng1.SnapshotWarmup(blinkdb.WarmupState{
		AdmissionEWMA: srv1.ExportAdmissionEWMA(),
	}); err != nil {
		stop1()
		return err
	}
	stop1() // the "kill": listener closed, engine closed, process state gone

	// Life 2: boot over the same directory. Samples load from segments,
	// caches restore from the warmup file; the FIRST answer must equal
	// life 1's steady-state answer.
	eng2, err := buildEngine(o)
	if err != nil {
		return err
	}
	defer eng2.Close()
	if notes := eng2.PersistenceNotes(); len(notes) != 0 {
		return fmt.Errorf("warm boot hit persistence notes: %v", notes)
	}
	srv2 := server.New(eng2, server.Config{Admission: admissionConfig(o)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv2}
	go hs.Serve(ln)
	defer hs.Close()

	reborn, err := singleFrame("http://"+ln.Addr().String(), sql)
	if err != nil {
		return fmt.Errorf("reborn query: %w", err)
	}
	if err := diffFrames(warm, reborn); err != nil {
		return fmt.Errorf("restart diff: %w", err)
	}
	fmt.Println("selfcheck restart ok: reborn server's first answer identical to predecessor's warm answer")
	return nil
}

// selfcheckLoadSpec is the kill+restart mix: a Poisson interactive
// cohort and a bursty half-streaming cohort, both aimed at the selfcheck
// sessions table, running long enough to straddle the kill, the reload,
// and the reborn server's steady state.
func selfcheckLoadSpec() loadgen.Spec {
	return loadgen.Spec{
		Seed:     77,
		Duration: 6 * time.Second,
		Cohorts: []loadgen.Cohort{
			{
				Name: "interactive", SLOClass: "interactive", SLOTargetSeconds: 1,
				Clients: 4, RateQPS: 40, RateSkew: 1.2,
				Arrival: loadgen.Poisson,
				Templates: []loadgen.Template{
					{Name: "avg-session", Pattern: "SELECT AVG(sessiontimems) FROM sessions WHERE city = 'city00%d'",
						Cardinality: 9, Skew: 1.2, Weight: 3},
					{Name: "avg-buffer", Pattern: "SELECT AVG(bufferingms) FROM sessions WHERE city = 'city00%d'",
						Cardinality: 9, Skew: 1.2, Weight: 1},
				},
				Bounds: []loadgen.Bound{
					{ErrorPct: 5, Confidence: 95, Weight: 2},
					{TimeSeconds: 1, Weight: 1},
					{Weight: 1},
				},
				GiveUpSeconds: 2,
			},
			{
				Name: "dashboard", SLOClass: "dashboard", SLOTargetSeconds: 2,
				Clients: 2, RateQPS: 20,
				Arrival: loadgen.Gamma, Burstiness: 4,
				Templates: []loadgen.Template{
					{Name: "avg-session-stream", Pattern: "SELECT AVG(sessiontimems) FROM sessions WHERE city = 'city00%d'",
						Cardinality: 9, Skew: 1.5, Weight: 1},
				},
				Bounds:         []loadgen.Bound{{ErrorPct: 10, Confidence: 95, Weight: 1}},
				StreamFraction: 0.5,
			},
		},
	}
}

// selfcheckRestartUnderLoad is the kill+restart leg with the loadgen
// cohorts still firing: serve from a data directory, start the mix,
// snapshot and tear the stack down abruptly mid-burst (no drain — the
// listener and its connections die like a SIGKILL), rebind the same
// port warming, reload behind it, and require that (a) /healthz says
// "warming" while cohorts keep arriving, (b) the reborn server's first
// answer is bit-identical to the predecessor's warm answer, and (c) the
// cohorts observed all three regimes: served before the kill, 503
// warming during the reload, served again after.
func selfcheckRestartUnderLoad(o options, sql string) error {
	dir, err := os.MkdirTemp("", "blinkdb-selfcheck-load-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	o.data = dir

	// Life 1 on an explicit port so the successor can rebind it.
	eng1, err := buildEngine(o)
	if err != nil {
		return err
	}
	srv1 := server.New(eng1, server.Config{Admission: admissionConfig(o)})
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng1.Close()
		return err
	}
	addr := ln1.Addr().String()
	base := "http://" + addr
	hs1 := &http.Server{Handler: srv1}
	go hs1.Serve(ln1)

	var warm json.RawMessage
	for i := 0; i < 2; i++ { // second pass: plan AND result caches hot
		if warm, err = singleFrame(base, sql); err != nil {
			hs1.Close()
			eng1.Close()
			return fmt.Errorf("life-1 warm query %d: %w", i, err)
		}
	}

	// The cohorts run through the whole arc: kill, reload, rebirth.
	repc := make(chan *loadgen.Report, 1)
	errc := make(chan error, 1)
	go func() {
		rep, err := loadgen.Run(loadgen.Generate(selfcheckLoadSpec()), loadgen.RunOptions{BaseURL: base})
		if err != nil {
			errc <- err
			return
		}
		repc <- rep
	}()

	time.Sleep(1200 * time.Millisecond) // cohorts are mid-burst
	if err := eng1.SnapshotWarmup(blinkdb.WarmupState{
		AdmissionEWMA: srv1.ExportAdmissionEWMA(),
	}); err != nil {
		hs1.Close()
		eng1.Close()
		return err
	}
	// The "kill": Close (unlike Shutdown) tears down the listener AND
	// every active connection with no drain; in-flight streams break
	// mid-frame. Give the aborted handlers a beat to unwind before the
	// engine goes away under them.
	hs1.Close()
	time.Sleep(300 * time.Millisecond)
	eng1.Close()

	// Life 2: rebind the same port immediately with a warming server, so
	// arrivals during the reload see 503 "warming", not dead air.
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rebind %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	eng2 := openEngine(o)
	defer eng2.Close()
	srv2 := server.New(eng2, server.Config{Warming: true, Admission: admissionConfig(o)})
	hs2 := &http.Server{Handler: srv2}
	go hs2.Serve(ln2)
	defer hs2.Close()

	if status, err := healthz(base); err != nil || status != "warming" {
		return fmt.Errorf("healthz during reload-under-load: %q, %v (want warming)", status, err)
	}
	if err := warmEngine(eng2, srv2, o); err != nil {
		return err
	}
	if notes := eng2.PersistenceNotes(); len(notes) != 0 {
		return fmt.Errorf("warm boot under load hit persistence notes: %v", notes)
	}
	srv2.SetReady()
	if status, err := healthz(base); err != nil || status != "ok" {
		return fmt.Errorf("healthz after reload-under-load: %q, %v (want ok)", status, err)
	}

	reborn, err := singleFrame(base, sql)
	if err != nil {
		return fmt.Errorf("reborn-under-load query: %w", err)
	}
	if err := diffFrames(warm, reborn); err != nil {
		return fmt.Errorf("restart-under-load diff: %w", err)
	}

	var rep *loadgen.Report
	select {
	case rep = <-repc:
	case err := <-errc:
		return fmt.Errorf("loadgen run: %w", err)
	}
	if rep.Served == 0 {
		return fmt.Errorf("cohorts were never served: %s", rep.Summary())
	}
	if rep.Unavailable == 0 {
		return fmt.Errorf("cohorts never saw the warming window (kill+reload too fast?): %s", rep.Summary())
	}
	fmt.Println("selfcheck restart-under-load ok: warming held, reborn answer identical, cohorts saw all three regimes")
	fmt.Print(rep.Summary())
	return nil
}

// healthz returns the status string from /healthz regardless of HTTP
// code (the warming state is 503 by design).
func healthz(base string) (string, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	return body.Status, nil
}

// singleFrame POSTs a non-streaming query and returns the raw JSON frame.
func singleFrame(base, sql string) (json.RawMessage, error) {
	body := fmt.Sprintf(`{"sql": %q}`, sql)
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("query: %d: %s", resp.StatusCode, raw)
	}
	return raw, nil
}

// diffFrames compares two /query frames field by field, ignoring only
// elapsed_ms (wall clock). Everything else — values, bounds, cache
// markers, simulated latency — must match exactly.
func diffFrames(a, b json.RawMessage) error {
	normalize := func(raw json.RawMessage) (map[string]any, error) {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, err
		}
		delete(m, "elapsed_ms")
		return m, nil
	}
	am, err := normalize(a)
	if err != nil {
		return err
	}
	bm, err := normalize(b)
	if err != nil {
		return err
	}
	aj, _ := json.Marshal(am)
	bj, _ := json.Marshal(bm)
	if string(aj) != string(bj) {
		return fmt.Errorf("frames differ:\n life1 %s\n life2 %s", aj, bj)
	}
	return nil
}

// selfcheckFrame is the subset of the wire frame the streaming phase
// validates.
type selfcheckFrame struct {
	Seq    int    `json:"seq"`
	Final  bool   `json:"final"`
	Error  string `json:"error"`
	Result *struct {
		Rows []struct {
			Group string `json:"group"`
			Cells []struct {
				Value float64 `json:"value"`
				Bound float64 `json:"bound"`
			} `json:"cells"`
		} `json:"rows"`
		Sample      string `json:"sample"`
		Explanation string `json:"explanation"`
	} `json:"result"`
}

func streamFrames(base, sql string) ([]selfcheckFrame, error) {
	body := fmt.Sprintf(`{"sql": %q, "stream": true}`, sql)
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("query: %d", resp.StatusCode)
	}
	var frames []selfcheckFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f selfcheckFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return nil, fmt.Errorf("bad NDJSON frame %q: %w", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	return frames, sc.Err()
}

func diffFinalFrame(final *struct {
	Rows []struct {
		Group string `json:"group"`
		Cells []struct {
			Value float64 `json:"value"`
			Bound float64 `json:"bound"`
		} `json:"cells"`
	} `json:"rows"`
	Sample      string `json:"sample"`
	Explanation string `json:"explanation"`
}, want *blinkdb.Result) error {
	if len(final.Rows) != len(want.Rows) {
		return fmt.Errorf("final frame has %d rows, library mode %d", len(final.Rows), len(want.Rows))
	}
	for i, row := range want.Rows {
		got := final.Rows[i]
		if got.Group != row.Group || len(got.Cells) != len(row.Cells) {
			return fmt.Errorf("row %d mismatch: %+v vs %+v", i, got, row)
		}
		for j, c := range row.Cells {
			if got.Cells[j].Value != c.Value || got.Cells[j].Bound != c.Bound {
				return fmt.Errorf("cell %d/%d mismatch: %+v vs %+v", i, j, got.Cells[j], c)
			}
		}
	}
	if final.Sample != want.SampleDescription || final.Explanation != want.Explanation {
		return fmt.Errorf("final frame annotations diverge from library mode:\n got %q / %q\nwant %q / %q",
			final.Sample, final.Explanation, want.SampleDescription, want.Explanation)
	}
	return nil
}
