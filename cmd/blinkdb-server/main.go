// Command blinkdb-server serves a BlinkDB engine over HTTP/JSON: bounded
// queries as single answers, streaming-refinement sessions as NDJSON or
// SSE, with ELP-priced admission control shedding overload before any
// scanning happens (429 + Retry-After) and graceful drain on SIGTERM.
//
//	$ blinkdb-server -rows 100000 -addr :8080
//	$ curl -s localhost:8080/query -d \
//	    '{"sql": "SELECT AVG(sessiontimems) FROM sessions GROUP BY os", "error": "10%", "stream": true}'
//
// See cmd/blinkdb-server/README.md for the endpoint reference.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blinkdb"
	"blinkdb/internal/admission"
	"blinkdb/internal/server"
)

type options struct {
	addr       string
	rows       int
	budget     float64
	seed       int64
	scale      float64
	maxConc    int
	maxQueue   int
	maxBacklog float64
	selfcheck  bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.rows, "rows", 100000, "fact table rows")
	flag.Float64Var(&o.budget, "budget", 0.5, "sample storage budget as a fraction of the table")
	flag.Int64Var(&o.seed, "seed", 42, "random seed")
	flag.Float64Var(&o.scale, "scale", 1e4, "stored-to-logical byte scale (latency model)")
	flag.IntVar(&o.maxConc, "max-concurrent", 1, "queries executing at once")
	flag.IntVar(&o.maxQueue, "max-queue", 16, "queued queries before shedding")
	flag.Float64Var(&o.maxBacklog, "max-backlog-seconds", 30, "predicted backlog seconds before shedding (negative disables)")
	flag.BoolVar(&o.selfcheck, "selfcheck", false, "start on a loopback port, run an end-to-end smoke against it, exit")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "blinkdb-server:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	fmt.Printf("loading sessions dataset (%d rows)...\n", o.rows)
	eng, err := buildEngine(o.rows, o.budget, o.seed, o.scale)
	if err != nil {
		return err
	}
	srv := server.New(eng, server.Config{
		Admission: admission.Config{
			MaxConcurrent:     o.maxConc,
			MaxQueue:          o.maxQueue,
			MaxBacklogSeconds: o.maxBacklog,
		},
	})

	if o.selfcheck {
		return runSelfcheck(srv, o)
	}

	hs := &http.Server{Addr: o.addr, Handler: srv}
	// SIGTERM/SIGINT starts a graceful drain: the listener closes, queued
	// admissions keep their place, in-flight queries (and their streams)
	// run to completion, then the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s (POST /query, GET /healthz, GET /stats)\n", o.addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("signal received; draining in-flight queries...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("drained; bye")
	return nil
}

// buildEngine loads a Conviva-shaped sessions table through the public
// engine API and builds city/os-stratified sample families. Deterministic
// per (rows, seed): two engines built with the same arguments answer
// bit-identically, which is what the selfcheck's library-mode comparison
// relies on.
func buildEngine(rows int, budget float64, seed int64, scale float64) (*blinkdb.Engine, error) {
	eng := blinkdb.Open(blinkdb.Config{Scale: scale, Seed: seed, CacheTables: true})
	load := eng.CreateTable("sessions",
		blinkdb.Col("city", blinkdb.String),
		blinkdb.Col("os", blinkdb.String),
		blinkdb.Col("genre", blinkdb.String),
		blinkdb.Col("sessiontimems", blinkdb.Float),
		blinkdb.Col("bufferingms", blinkdb.Float),
	)
	rng := rand.New(rand.NewSource(seed))
	oses := []string{"Win7", "OSX", "WinXP", "Linux", "iOS", "Android"}
	genres := []string{"western", "drama", "news", "sports"}
	zipfCity := rand.NewZipf(rng, 1.5, 1, 11)
	for i := 0; i < rows; i++ {
		city := fmt.Sprintf("city%03d", zipfCity.Uint64())
		if err := load.Append(
			city, oses[rng.Intn(len(oses))], genres[rng.Intn(len(genres))],
			rng.ExpFloat64()*120000, rng.ExpFloat64()*800,
		); err != nil {
			return nil, err
		}
	}
	if err := load.Close(); err != nil {
		return nil, err
	}
	rep, err := eng.CreateSamples("sessions", blinkdb.SampleOptions{
		BudgetFraction: budget,
		K:              2000,
		Templates: []blinkdb.Template{
			{Columns: []string{"city"}, Weight: 0.6},
			{Columns: []string{"os"}, Weight: 0.4},
		},
	})
	if err != nil {
		return nil, err
	}
	for _, f := range rep.Families {
		fmt.Printf("  built sample family %v (%d rows, %d resolutions)\n",
			f.Columns, f.Rows, f.Resolutions)
	}
	return eng, nil
}

// runSelfcheck is the CI end-to-end smoke: serve on a loopback port,
// stream one bounded query over real HTTP, validate the NDJSON frames,
// and compare the final frame against library mode on a twin engine.
func runSelfcheck(srv *server.Server, o options) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %d", resp.StatusCode)
	}

	// Stream a bounded query and validate the frames.
	const sql = `SELECT AVG(sessiontimems) FROM sessions WHERE city = 'city001' ERROR WITHIN 5% AT CONFIDENCE 95%`
	body := fmt.Sprintf(`{"sql": %q, "stream": true}`, sql)
	resp, err = http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query: %d", resp.StatusCode)
	}
	type cell struct {
		Value float64 `json:"value"`
		Bound float64 `json:"bound"`
	}
	type frame struct {
		Seq    int    `json:"seq"`
		Final  bool   `json:"final"`
		Error  string `json:"error"`
		Result *struct {
			Rows []struct {
				Group string `json:"group"`
				Cells []cell `json:"cells"`
			} `json:"rows"`
			Sample      string `json:"sample"`
			Explanation string `json:"explanation"`
		} `json:"result"`
	}
	var frames []frame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return fmt.Errorf("bad NDJSON frame %q: %w", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(frames) < 2 {
		return fmt.Errorf("want at least one refinement before the final answer, got %d frame(s)", len(frames))
	}
	for i, f := range frames {
		if f.Error != "" {
			return fmt.Errorf("frame %d carries error %q", i, f.Error)
		}
		if f.Seq != i || f.Final != (i == len(frames)-1) || f.Result == nil {
			return fmt.Errorf("malformed frame sequence at %d: %+v", i, f)
		}
	}

	// The final frame must match library mode on a twin engine built with
	// the same arguments (floats survive the JSON round trip exactly).
	twin, err := buildEngine(o.rows, o.budget, o.seed, o.scale)
	if err != nil {
		return err
	}
	want, err := twin.Query(sql)
	if err != nil {
		return err
	}
	final := frames[len(frames)-1].Result
	if len(final.Rows) != len(want.Rows) {
		return fmt.Errorf("final frame has %d rows, library mode %d", len(final.Rows), len(want.Rows))
	}
	for i, row := range want.Rows {
		got := final.Rows[i]
		if got.Group != row.Group || len(got.Cells) != len(row.Cells) {
			return fmt.Errorf("row %d mismatch: %+v vs %+v", i, got, row)
		}
		for j, c := range row.Cells {
			if got.Cells[j].Value != c.Value || got.Cells[j].Bound != c.Bound {
				return fmt.Errorf("cell %d/%d mismatch: %+v vs %+v", i, j, got.Cells[j], c)
			}
		}
	}
	if final.Sample != want.SampleDescription || final.Explanation != want.Explanation {
		return fmt.Errorf("final frame annotations diverge from library mode:\n got %q / %q\nwant %q / %q",
			final.Sample, final.Explanation, want.SampleDescription, want.Explanation)
	}

	// Stats must show the admissions.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats struct {
		Engine struct {
			Admitted int64 `json:"Admitted"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	if stats.Engine.Admitted < 1 {
		return fmt.Errorf("stats report no admissions")
	}
	fmt.Printf("selfcheck ok: %d frames, final matches library mode\n", len(frames))
	return nil
}
