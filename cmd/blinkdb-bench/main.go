// Command blinkdb-bench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated cluster.
//
// Usage:
//
//	blinkdb-bench                  # run every experiment (full size)
//	blinkdb-bench -quick           # reduced dataset sizes
//	blinkdb-bench -run 6c,table5   # run a subset
//	blinkdb-bench -list            # list experiment names
//	blinkdb-bench -rows 200000     # override the Conviva row count
//	blinkdb-bench -json            # also write a BENCH_<date>.json snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"blinkdb/internal/exec"
	"blinkdb/internal/experiments"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// expRecord is one experiment's perf sample in the JSON snapshot.
type expRecord struct {
	Name string `json:"name"`
	// NsOp is the wall-clock nanoseconds of one full regeneration
	// (dataset + samples + queries), the same unit `go test -bench
	// -benchtime=1x` reports for the matching Benchmark.
	NsOp int64 `json:"ns_op"`
	// RowsPerSec is dataset rows divided by wall-clock — a coarse
	// throughput number that stays comparable across PRs as long as the
	// config is fixed (use -quick for the tracked snapshot).
	RowsPerSec float64 `json:"rows_per_sec"`
}

// execRecord reports the scan-executor micro-benchmark: a filtered
// grouped aggregation over the same in-memory table in BOTH block
// layouts at several worker counts. The row/columnar pairing tracks the
// vectorized-scan speedup over time; results are bit-identical across
// layouts and worker counts, only throughput differs.
type execRecord struct {
	Rows   int `json:"rows"`
	Blocks int `json:"blocks"`
	// RowsPerSec is the row-layout throughput by worker count (field
	// name kept stable for cross-PR comparison).
	RowsPerSec map[string]float64 `json:"rows_per_sec_by_workers"`
	// ColumnarRowsPerSec is the columnar-layout (vectorized) throughput.
	ColumnarRowsPerSec map[string]float64 `json:"columnar_rows_per_sec_by_workers"`
	// AffinityOnRowsPerSec / AffinityOffRowsPerSec pair the columnar
	// throughput under the node-affine shard scheduler against the
	// node-blind one (results are bit-identical; only worker→range
	// assignment differs).
	AffinityOnRowsPerSec  map[string]float64 `json:"affinity_on_rows_per_sec_by_workers"`
	AffinityOffRowsPerSec map[string]float64 `json:"affinity_off_rows_per_sec_by_workers"`
	// LocalityHitRate is the fraction of the bench table's bytes the
	// node-affine schedule reads on the owning node (1.0 when every scan
	// range is a single block).
	LocalityHitRate float64 `json:"locality_hit_rate"`
	// ColumnarSpeedup1 is columnar/row throughput at 1 worker — the
	// single-thread layout speedup.
	ColumnarSpeedup1 float64 `json:"columnar_speedup_1_worker"`
	Speedup8vs1      float64 `json:"speedup_8_vs_1"`
}

// snapshot is the BENCH_<date>.json schema.
type snapshot struct {
	Date        string      `json:"date"`
	Quick       bool        `json:"quick"`
	GoVersion   string      `json:"go_version"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Experiments []expRecord `json:"experiments"`
	Executor    execRecord  `json:"executor"`
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "use reduced dataset sizes")
		run      = flag.String("run", "", "comma-separated experiment names (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		rows     = flag.Int("rows", 0, "override Conviva row count")
		tpch     = flag.Int("tpch-rows", 0, "override TPC-H row count")
		seed     = flag.Int64("seed", 0, "override random seed")
		jsonOut  = flag.Bool("json", false, "write a BENCH_<date>.json perf snapshot")
		jsonPath = flag.String("json-path", "", "override the snapshot path (implies -json)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return
	}

	cfg := experiments.Config{}
	if *quick {
		cfg = experiments.Quick()
	}
	if *rows > 0 {
		cfg.ConvivaRows = *rows
	}
	if *tpch > 0 {
		cfg.TPCHRows = *tpch
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	names := map[string]bool{}
	if *run != "" {
		for _, n := range strings.Split(*run, ",") {
			names[strings.TrimSpace(n)] = true
		}
	}

	snap := snapshot{
		Date:       time.Now().Format("2006-01-02"),
		Quick:      *quick,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	datasetRows := cfg.TotalDatasetRows()

	failed := 0
	for _, e := range experiments.All() {
		if len(names) > 0 && !names[e.Name] {
			continue
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.Name, err)
			failed++
			continue
		}
		fmt.Println(tab)
		fmt.Printf("(%s regenerated in %.1fs)\n\n", e.Name, elapsed.Seconds())
		snap.Experiments = append(snap.Experiments, expRecord{
			Name:       e.Name,
			NsOp:       elapsed.Nanoseconds(),
			RowsPerSec: float64(datasetRows) / elapsed.Seconds(),
		})
	}

	if *jsonOut || *jsonPath != "" {
		snap.Executor = executorBench()
		path := *jsonPath
		if path == "" {
			path = "BENCH_" + snap.Date + ".json"
		}
		data, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("perf snapshot written to %s\n", path)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// executorBench measures the partitioned scan executor in isolation:
// rows/s of a filtered grouped aggregation at worker counts 1, 2, 4, 8,
// over the same data in the row layout and the columnar (vectorized)
// layout. Results are bit-identical across layouts and counts; only
// throughput differs (worker scaling additionally needs GOMAXPROCS > 1 —
// single-core hosts report speedup_8_vs_1 ≈ 1, but the layout speedup is
// visible even there).
func executorBench() execRecord {
	const rows = 300000
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "code", Kind: types.KindInt},
		types.Column{Name: "sessiontime", Kind: types.KindFloat},
	)
	build := func(layout storage.Layout) *storage.Table {
		tab := storage.NewTable("bench", schema)
		b := storage.NewBuilderLayout(tab, 2048, 4, storage.InMemory, layout)
		rng := rand.New(rand.NewSource(17))
		cities := []string{"NY", "SF", "LA", "Austin", "Boise"}
		for i := 0; i < rows; i++ {
			b.AppendRow(types.Row{
				types.Str(cities[rng.Intn(len(cities))]),
				types.Int(int64(rng.Intn(1000))),
				types.Float(rng.ExpFloat64() * 100),
			})
		}
		return b.Finish()
	}
	q := `SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime) FROM bench WHERE code < 900 GROUP BY city`
	plan, err := compileBench(q, schema)
	if err != nil {
		panic(err) // static query against a static schema
	}

	measure := func(in exec.Input, workers int, sched exec.Sched) float64 {
		// Warm up once, then time enough iterations for ≥ ~0.5 s.
		exec.RunParallelSched(plan, in, 0.95, workers, sched)
		iters := 0
		start := time.Now()
		for time.Since(start) < 500*time.Millisecond {
			exec.RunParallelSched(plan, in, 0.95, workers, sched)
			iters++
		}
		return float64(rows) * float64(iters) / time.Since(start).Seconds()
	}
	rowTab := build(storage.RowLayout)
	colTab := build(storage.ColumnarLayout)
	rec := execRecord{
		Rows: rows, Blocks: len(rowTab.Blocks),
		RowsPerSec:            map[string]float64{},
		ColumnarRowsPerSec:    map[string]float64{},
		AffinityOnRowsPerSec:  map[string]float64{},
		AffinityOffRowsPerSec: map[string]float64{},
	}
	_, shards := exec.ScanShards(colTab.Blocks)
	rec.LocalityHitRate = storage.LocalityHitRate(shards)
	for _, w := range []int{1, 2, 4, 8} {
		key := fmt.Sprintf("%d", w)
		rec.RowsPerSec[key] = measure(exec.FromTable(rowTab), w, exec.SchedNodeAffine)
		rec.ColumnarRowsPerSec[key] = measure(exec.FromTable(colTab), w, exec.SchedNodeAffine)
		rec.AffinityOnRowsPerSec[key] = rec.ColumnarRowsPerSec[key]
		rec.AffinityOffRowsPerSec[key] = measure(exec.FromTable(colTab), w, exec.SchedBlind)
	}
	if base := rec.RowsPerSec["1"]; base > 0 {
		rec.Speedup8vs1 = rec.RowsPerSec["8"] / base
		rec.ColumnarSpeedup1 = rec.ColumnarRowsPerSec["1"] / base
	}
	return rec
}

func compileBench(q string, schema *types.Schema) (*exec.Plan, error) {
	parsed, err := sqlparser.Parse(q)
	if err != nil {
		return nil, err
	}
	return exec.Compile(parsed, schema)
}
