// Command blinkdb-bench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated cluster.
//
// Usage:
//
//	blinkdb-bench                  # run every experiment (full size)
//	blinkdb-bench -quick           # reduced dataset sizes
//	blinkdb-bench -run 6c,table5   # run a subset
//	blinkdb-bench -list            # list experiment names
//	blinkdb-bench -rows 200000     # override the Conviva row count
//	blinkdb-bench -json            # also write a BENCH_<date>.json snapshot
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blinkdb"
	"blinkdb/internal/admission"
	"blinkdb/internal/blockfile"
	"blinkdb/internal/exec"
	"blinkdb/internal/experiments"
	"blinkdb/internal/loadgen"
	"blinkdb/internal/server"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/telemetry"
	"blinkdb/internal/types"
	"blinkdb/internal/zipf"
)

// expRecord is one experiment's perf sample in the JSON snapshot.
type expRecord struct {
	Name string `json:"name"`
	// NsOp is the wall-clock nanoseconds of one full regeneration
	// (dataset + samples + queries), the same unit `go test -bench
	// -benchtime=1x` reports for the matching Benchmark.
	NsOp int64 `json:"ns_op"`
	// RowsPerSec is dataset rows divided by wall-clock — a coarse
	// throughput number that stays comparable across PRs as long as the
	// config is fixed (use -quick for the tracked snapshot).
	RowsPerSec float64 `json:"rows_per_sec"`
}

// execRecord reports the scan-executor micro-benchmark: a filtered
// grouped aggregation over the same in-memory table in BOTH block
// layouts at several worker counts. The row/columnar pairing tracks the
// vectorized-scan speedup over time; results are bit-identical across
// layouts and worker counts, only throughput differs.
type execRecord struct {
	Rows   int `json:"rows"`
	Blocks int `json:"blocks"`
	// RowsPerSec is the row-layout throughput by worker count (field
	// name kept stable for cross-PR comparison).
	RowsPerSec map[string]float64 `json:"rows_per_sec_by_workers"`
	// ColumnarRowsPerSec is the columnar-layout (vectorized) throughput.
	ColumnarRowsPerSec map[string]float64 `json:"columnar_rows_per_sec_by_workers"`
	// AffinityOnRowsPerSec / AffinityOffRowsPerSec pair the columnar
	// throughput under the node-affine shard scheduler against the
	// node-blind one (results are bit-identical; only worker→range
	// assignment differs).
	AffinityOnRowsPerSec  map[string]float64 `json:"affinity_on_rows_per_sec_by_workers"`
	AffinityOffRowsPerSec map[string]float64 `json:"affinity_off_rows_per_sec_by_workers"`
	// LocalityHitRate is the fraction of the bench table's bytes the
	// node-affine schedule reads on the owning node (1.0 when every scan
	// range is a single block).
	LocalityHitRate float64 `json:"locality_hit_rate"`
	// ColumnarSpeedup1 is columnar/row throughput at 1 worker — the
	// single-thread layout speedup.
	ColumnarSpeedup1 float64 `json:"columnar_speedup_1_worker"`
	Speedup8vs1      float64 `json:"speedup_8_vs_1"`
}

// replayRecord reports the hot-template replay benchmark: one bounded
// query template is replayed against two engines that differ only in
// Config.PlanCacheSize — the default template-keyed plan cache vs the
// prepare-every-query pipeline. Answers are bit-identical (asserted
// before timing); only queries/sec differs. The replay cycles a few
// constants through the template, so the cache serves template hits for
// both repeated and fresh constants, like a real serving workload.
type replayRecord struct {
	Template string `json:"template"`
	// Queries is how many replays each timed engine served.
	Queries int `json:"queries"`
	// QpsCacheOn/Off are the measured queries/sec with the plan cache at
	// its default size vs disabled.
	QpsCacheOn  float64 `json:"qps_hot_template_cache_on"`
	QpsCacheOff float64 `json:"qps_hot_template_cache_off"`
	// HitRate is the cached engine's measured plan-cache hit rate.
	HitRate float64 `json:"plan_cache_hit_rate"`
	// Speedup is QpsCacheOn/QpsCacheOff.
	Speedup float64 `json:"cache_speedup"`
}

// resultReplayRecord reports the concurrent Zipf replay benchmark: a
// Zipf-skewed stream of fully-bound queries (hot constants repeat
// heavily, like real dashboard traffic) is replayed by several goroutines
// against two engines differing only in Config.ResultCacheSize — the
// default cross-query result cache vs the plan-cache-only pipeline.
// Answers are bit-identical (asserted before timing); only queries/sec
// differs, because a result-cache hit serves a completed answer from
// memory while the plan-cache-only engine re-scans the chosen view.
type resultReplayRecord struct {
	Template string `json:"template"`
	// Goroutines is the replay concurrency (singleflight territory).
	Goroutines int `json:"goroutines"`
	// Queries is how many replays the result-cached engine served.
	Queries int `json:"queries"`
	// QpsOn/QpsOff are queries/sec with the result cache at its default
	// size vs disabled (both engines keep the default plan cache, so the
	// off number IS the plan-cache-only baseline of PR 4).
	QpsOn  float64 `json:"qps_on"`
	QpsOff float64 `json:"qps_off"`
	// HitRate is hits/(hits+misses+shared) on the cached engine;
	// SharedRate is the singleflight share shared/(hits+misses+shared).
	HitRate    float64 `json:"hit_rate"`
	SharedRate float64 `json:"shared_rate"`
	// Speedup is QpsOn/QpsOff — the hot-replay speedup over the
	// plan-cache-only baseline.
	Speedup float64 `json:"speedup"`
}

// kernelRecord reports the scan-kernel overhaul's three headline ratios,
// each measured as single-thread throughput of one physical design over
// another on identical logical data (answers are bit-identical by the
// Tuning contract; only the kernels differ):
//
//   - RLESpeedup: filtered grouped scan over a sorted-stratification
//     table, the full overhaul (run-length-encoded columns, three-state
//     zones, selection vectors) vs the pre-overhaul columnar design
//     (plain typed encodings, two-state zones, bitmap-only kernels).
//   - LateMatJoinSpeedup: columnar fact⋈dim scan, late materialization
//     (fact predicate first, probe keys straight from the columns) vs
//     expanding every fact row through the join before filtering.
//   - SelVecVsBitmap: mid-selectivity single-leaf predicate dispatched to
//     the selection-vector kernel vs forced bitmap evaluation.
type kernelRecord struct {
	// RLERowsPerSec / PlainRowsPerSec are the two legs behind RLESpeedup.
	RLERowsPerSec   float64 `json:"rle_rows_per_sec"`
	PlainRowsPerSec float64 `json:"plain_rows_per_sec"`
	RLESpeedup      float64 `json:"rle_speedup"`
	// LateMatJoinSpeedup = late-materialization / early-materialization
	// join throughput.
	LateMatJoinSpeedup float64 `json:"latemat_join_speedup"`
	// SelVecVsBitmap = selection-vector / bitmap scan throughput.
	SelVecVsBitmap float64 `json:"selvec_vs_bitmap"`
}

// templateTelemetry is one template's histogram summary in the snapshot.
type templateTelemetry struct {
	Template string `json:"template"`
	Queries  uint64 `json:"queries"`
	// P50Ms/P95Ms/P99Ms summarize the wall-clock latency histogram.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// PredictedOverObservedLatency compares the ELP's simulated-latency
	// projection against simulated-latency observations (mean/mean; a
	// calibration ratio, not a wall-clock comparison). Analogous for the
	// error half-width below — that pair IS same-units, so ≈1 means the
	// 1/√n extrapolation was honest.
	PredictedOverObservedLatency float64 `json:"predicted_over_observed_latency"`
	PredictedOverObservedBound   float64 `json:"predicted_over_observed_bound"`
}

// telemetryRecord reports the telemetry layer itself: the concurrent Zipf
// replay of resultReplayBench repeated against two engines differing only
// in Config.DisableTelemetry (answers are bit-identical by construction —
// the span API is nil-safe and decisions are computed unconditionally).
// OverheadFraction is the relative QPS cost of leaving telemetry on; the
// acceptance target is ≤ 5% on this cache-hit-heavy path, the worst case
// because per-query work is smallest there.
type telemetryRecord struct {
	QpsTelemetryOn   float64             `json:"qps_telemetry_on"`
	QpsTelemetryOff  float64             `json:"qps_telemetry_off"`
	OverheadFraction float64             `json:"overhead_fraction"`
	Templates        []templateTelemetry `json:"templates"`
}

// serverRecord reports the HTTP serving layer under 2× overload: a
// blinkdb-server (in-process, httptest listener) with MaxConcurrent=1
// and a short admission queue is hammered by more streaming clients than
// it can seat, so a steady fraction of arrivals is shed with 429 before
// any scanning. Served requests report client-observed time-to-first-
// answer (first NDJSON frame) vs time-to-final — the gap is what
// streaming refinement buys an impatient dashboard.
type serverRecord struct {
	// Goroutines is the client concurrency; the admission queue seats
	// MaxConcurrent+MaxQueue of them, so the offered load is ~2× capacity.
	Goroutines int `json:"goroutines"`
	// Queries / Shed count 200-OK sessions vs 429 rejections.
	Queries int `json:"queries"`
	Shed    int `json:"shed"`
	// Qps is completed sessions per second over the measurement window.
	Qps float64 `json:"http_qps"`
	// TTFAP50Ms / TTFP50Ms are the p50 of client-observed first-frame and
	// final-frame latency (ms) across served streaming sessions.
	TTFAP50Ms float64 `json:"time_to_first_answer_p50_ms"`
	TTFP50Ms  float64 `json:"time_to_final_p50_ms"`
	// ShedRate is Shed/(Queries+Shed) — the fraction of the 2× offered
	// load the admission controller refused instead of queueing without
	// bound.
	ShedRate float64 `json:"shed_rate_2x_overload"`
}

// persistenceRecord captures warm-boot economics: seconds from
// table-loaded to fully-warm (samples built/loaded, caches hot) on a
// cold start vs a restart over persisted segments and warmup state,
// plus sample-segment load throughput via mmap vs the portable
// ReadFile fallback.
type persistenceRecord struct {
	Rows int `json:"rows"`
	// ColdBootSeconds: stratify samples from scratch + execute the warm
	// query set. WarmBootSeconds: load segments + restore warmup +
	// replay the same set (cache hits).
	ColdBootSeconds float64 `json:"cold_boot_seconds"`
	WarmBootSeconds float64 `json:"warm_boot_seconds"`
	WarmBootSpeedup float64 `json:"warm_boot_speedup"`
	// RestoredPlans / RestoredResults count warmup-file cache entries
	// the restarted engine accepted.
	RestoredPlans   int `json:"restored_plans"`
	RestoredResults int `json:"restored_results"`
	// SegmentMB is the on-disk size of the persisted sample segments;
	// the two throughputs time opening them and materializing every
	// table, mmap vs ReadFile.
	SegmentMB        float64 `json:"segment_mb"`
	MmapLoadMBps     float64 `json:"mmap_load_mb_per_sec"`
	ReadFileLoadMBps float64 `json:"readfile_load_mb_per_sec"`
}

// loadgenRecord reports the closed-loop SLO harness: a seeded
// ServeGen-style cohort mix generated by internal/loadgen, recorded to
// its trace wire format, and replayed twice over real HTTP against a
// capacity-1 server — once cache-cold, once cache-warm with the very
// same trace. Per-SLO-class percentiles, bound-compliance and shed
// rates come straight from the runner's Report.
type loadgenRecord struct {
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	Cohorts         int     `json:"cohorts"`
	TraceRequests   int     `json:"trace_requests"`
	// TraceFingerprint identifies the recorded request stream;
	// TraceReplayIdentical asserts the determinism contract held: a
	// second Generate of the same spec and a read-back of the recorded
	// bytes both reproduce the stream byte-for-byte.
	TraceFingerprint     string `json:"trace_fingerprint"`
	TraceReplayIdentical bool   `json:"trace_replay_identical"`
	// ConservationOK asserts the serving-path accounting identity over
	// both passes: every dispatched arrival is admitted, shed, or
	// queue-cancelled on the server side. The bench panics when it does
	// not balance, so the CI smoke run enforces it.
	ConservationOK bool            `json:"conservation_ok"`
	Cold           *loadgen.Report `json:"cold"`
	Warm           *loadgen.Report `json:"warm"`
}

// snapshot is the BENCH_<date>.json schema.
type snapshot struct {
	Date        string             `json:"date"`
	Quick       bool               `json:"quick"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Experiments []expRecord        `json:"experiments"`
	Executor    execRecord         `json:"executor"`
	PlanCache   replayRecord       `json:"plan_cache"`
	ResultCache resultReplayRecord `json:"result_cache"`
	Kernels     kernelRecord       `json:"kernels"`
	Telemetry   telemetryRecord    `json:"telemetry"`
	Server      serverRecord       `json:"server"`
	Persistence persistenceRecord  `json:"persistence"`
	Loadgen     loadgenRecord      `json:"loadgen"`
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "use reduced dataset sizes")
		run      = flag.String("run", "", "comma-separated experiment names (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		rows     = flag.Int("rows", 0, "override Conviva row count")
		tpch     = flag.Int("tpch-rows", 0, "override TPC-H row count")
		seed     = flag.Int64("seed", 0, "override random seed")
		jsonOut  = flag.Bool("json", false, "write a BENCH_<date>.json perf snapshot")
		jsonPath = flag.String("json-path", "", "override the snapshot path (implies -json)")
		smoke    = flag.Bool("smoke", false, "shrink the executor/replay micro-benchmarks (CI path coverage; numbers not comparable to tracked snapshots)")
		loadOnly = flag.Bool("loadgen", false, "run only the loadgen closed-loop SLO harness and print its record as JSON")
		trace    = flag.String("trace", "", "write a Chrome trace-event file of a cold+warm query pair to this path")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return
	}

	if *loadOnly {
		rec := loadgenBench(*smoke)
		data, err := json.MarshalIndent(&rec, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal loadgen record: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}

	cfg := experiments.Config{}
	if *quick {
		cfg = experiments.Quick()
	}
	if *rows > 0 {
		cfg.ConvivaRows = *rows
	}
	if *tpch > 0 {
		cfg.TPCHRows = *tpch
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	names := map[string]bool{}
	if *run != "" {
		for _, n := range strings.Split(*run, ",") {
			names[strings.TrimSpace(n)] = true
		}
	}

	snap := snapshot{
		Date:       time.Now().Format("2006-01-02"),
		Quick:      *quick,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	datasetRows := cfg.TotalDatasetRows()

	failed := 0
	for _, e := range experiments.All() {
		if len(names) > 0 && !names[e.Name] {
			continue
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.Name, err)
			failed++
			continue
		}
		fmt.Println(tab)
		fmt.Printf("(%s regenerated in %.1fs)\n\n", e.Name, elapsed.Seconds())
		snap.Experiments = append(snap.Experiments, expRecord{
			Name:       e.Name,
			NsOp:       elapsed.Nanoseconds(),
			RowsPerSec: float64(datasetRows) / elapsed.Seconds(),
		})
	}

	if *trace != "" {
		if err := traceExport(*trace, *smoke); err != nil {
			fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s (open via chrome://tracing or ui.perfetto.dev)\n", *trace)
	}

	if *jsonOut || *jsonPath != "" {
		snap.Executor = executorBench(*smoke)
		snap.PlanCache = replayBench(*smoke)
		snap.ResultCache = resultReplayBench(*smoke)
		snap.Kernels = kernelsBench(*smoke)
		snap.Telemetry = telemetryBench(*smoke)
		snap.Server = serverBench(*smoke)
		snap.Persistence = persistenceBench(*smoke)
		snap.Loadgen = loadgenBench(*smoke)
		path := *jsonPath
		if path == "" {
			path = "BENCH_" + snap.Date + ".json"
		}
		data, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("perf snapshot written to %s\n", path)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// executorBench measures the partitioned scan executor in isolation:
// rows/s of a filtered grouped aggregation at worker counts 1, 2, 4, 8,
// over the same data in the row layout and the columnar (vectorized)
// layout. Results are bit-identical across layouts and counts; only
// throughput differs (worker scaling additionally needs GOMAXPROCS > 1 —
// single-core hosts report speedup_8_vs_1 ≈ 1, but the layout speedup is
// visible even there). smoke shrinks data and timing windows for CI path
// coverage; smoke numbers are not comparable to tracked snapshots.
func executorBench(smoke bool) execRecord {
	rows := 300000
	window := 500 * time.Millisecond
	if smoke {
		rows, window = 60000, 100*time.Millisecond
	}
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "code", Kind: types.KindInt},
		types.Column{Name: "sessiontime", Kind: types.KindFloat},
	)
	build := func(layout storage.Layout) *storage.Table {
		tab := storage.NewTable("bench", schema)
		b := storage.NewBuilderLayout(tab, 2048, 4, storage.InMemory, layout)
		rng := rand.New(rand.NewSource(17))
		cities := []string{"NY", "SF", "LA", "Austin", "Boise"}
		for i := 0; i < rows; i++ {
			b.AppendRow(types.Row{
				types.Str(cities[rng.Intn(len(cities))]),
				types.Int(int64(rng.Intn(1000))),
				types.Float(rng.ExpFloat64() * 100),
			})
		}
		return b.Finish()
	}
	q := `SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime) FROM bench WHERE code < 900 GROUP BY city`
	plan, err := compileBench(q, schema)
	if err != nil {
		panic(err) // static query against a static schema
	}

	measure := func(in exec.Input, workers int, sched exec.Sched) float64 {
		// Warm up once, then time enough iterations for ≥ ~0.5 s.
		exec.RunParallelSched(plan, in, 0.95, workers, sched)
		iters := 0
		start := time.Now()
		for time.Since(start) < window {
			exec.RunParallelSched(plan, in, 0.95, workers, sched)
			iters++
		}
		return float64(rows) * float64(iters) / time.Since(start).Seconds()
	}
	rowTab := build(storage.RowLayout)
	colTab := build(storage.ColumnarLayout)
	rec := execRecord{
		Rows: rows, Blocks: len(rowTab.Blocks),
		RowsPerSec:            map[string]float64{},
		ColumnarRowsPerSec:    map[string]float64{},
		AffinityOnRowsPerSec:  map[string]float64{},
		AffinityOffRowsPerSec: map[string]float64{},
	}
	_, shards := exec.ScanShards(colTab.Blocks)
	rec.LocalityHitRate = storage.LocalityHitRate(shards)
	for _, w := range []int{1, 2, 4, 8} {
		key := fmt.Sprintf("%d", w)
		rec.RowsPerSec[key] = measure(exec.FromTable(rowTab), w, exec.SchedNodeAffine)
		rec.ColumnarRowsPerSec[key] = measure(exec.FromTable(colTab), w, exec.SchedNodeAffine)
		rec.AffinityOnRowsPerSec[key] = rec.ColumnarRowsPerSec[key]
		rec.AffinityOffRowsPerSec[key] = measure(exec.FromTable(colTab), w, exec.SchedBlind)
	}
	if base := rec.RowsPerSec["1"]; base > 0 {
		rec.Speedup8vs1 = rec.RowsPerSec["8"] / base
		rec.ColumnarSpeedup1 = rec.ColumnarRowsPerSec["1"] / base
	}
	return rec
}

// kernelsBench measures the scan-kernel overhaul in isolation (see
// kernelRecord). All legs run single-threaded on identical logical data;
// the Tuning knobs and the RLE/plain builder toggle are purely physical,
// so every pairing is answer-identical by construction — only the kernels
// under test differ.
func kernelsBench(smoke bool) kernelRecord {
	strata, perStratum := 100, 2000
	window := 500 * time.Millisecond
	if smoke {
		strata, perStratum, window = 40, 500, 100*time.Millisecond
	}
	rows := strata * perStratum

	// The sorted-stratification shape: rows arrive sorted by the
	// stratification column (~perStratum-row runs, the layout
	// sample.Build produces), which the RLE leg encodes per-run and the
	// plain leg dictionary-encodes per-row.
	schema := types.NewSchema(
		types.Column{Name: "strat", Kind: types.KindString},
		types.Column{Name: "v", Kind: types.KindFloat},
	)
	build := func(rle bool) *storage.Table {
		tab := storage.NewTable("strat", schema)
		b := storage.NewBuilderLayout(tab, 2048, 4, storage.InMemory, storage.ColumnarLayout)
		if rle {
			b.HintSortedColumns(0)
		} else {
			b.DisableRLE()
		}
		rng := rand.New(rand.NewSource(29))
		for s := 0; s < strata; s++ {
			name := types.Str(fmt.Sprintf("stratum-%03d", s))
			for j := 0; j < perStratum; j++ {
				b.Append(types.Row{name, types.Float(rng.ExpFloat64() * 100)},
					storage.RowMeta{Rate: 1, StratumFreq: 1000})
			}
		}
		return b.Finish()
	}
	rleTab := build(true)
	plainTab := build(false)

	measure := func(plan *exec.Plan, tab *storage.Table) float64 {
		in := exec.FromTable(tab)
		exec.RunParallel(plan, in, 0.95, 1) // warm
		iters := 0
		start := time.Now()
		for time.Since(start) < window {
			exec.RunParallel(plan, in, 0.95, 1)
			iters++
		}
		return float64(rows) * float64(iters) / time.Since(start).Seconds()
	}

	rec := kernelRecord{}

	// Leg 1: the overhauled scan (RLE table, default Tuning) vs the
	// pre-overhaul columnar design (plain table, three-state zones and
	// selection vectors switched off). The range covers ~60% of the
	// strata, so blocks split into pruned / all-true / mixed — the full
	// three-state spread.
	scanQ := fmt.Sprintf(
		`SELECT COUNT(*), SUM(v) FROM strat WHERE strat >= 'stratum-%03d' AND strat < 'stratum-%03d' GROUP BY strat`,
		strata/5, strata/5+(strata*3)/5)
	scanPlan, err := compileBench(scanQ, schema)
	if err != nil {
		panic(err)
	}
	oldPlan := *scanPlan
	oldPlan.Tuning = exec.Tuning{NoTristateZones: true, NoSelVectors: true}
	rec.RLERowsPerSec = measure(scanPlan, rleTab)
	rec.PlainRowsPerSec = measure(&oldPlan, plainTab)
	if rec.PlainRowsPerSec > 0 {
		rec.RLESpeedup = rec.RLERowsPerSec / rec.PlainRowsPerSec
	}

	// Leg 2: selection-vector vs bitmap on a mid-selectivity single-leaf
	// predicate (v < 100 matches ~63% of ExpFloat64()*100).
	selQ := `SELECT COUNT(*), SUM(v) FROM strat WHERE v < 100 GROUP BY strat`
	selPlan, err := compileBench(selQ, schema)
	if err != nil {
		panic(err)
	}
	bmPlan := *selPlan
	bmPlan.Tuning.NoSelVectors = true
	if bm := measure(&bmPlan, rleTab); bm > 0 {
		rec.SelVecVsBitmap = measure(selPlan, rleTab) / bm
	}

	// Leg 3: late- vs early-materialized join. The dimension maps strata
	// to a handful of buckets; the fact-side conjunct keeps ~half the
	// rows, so early materialization expands twice as many rows as it
	// aggregates.
	dimSchema := types.NewSchema(
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "bucket", Kind: types.KindString},
	)
	dim := storage.NewTable("strata", dimSchema)
	db := storage.NewBuilder(dim, 64, 1, storage.InMemory)
	buckets := []string{"low", "mid", "high", "top"}
	for s := 0; s < strata; s++ {
		db.AppendRow(types.Row{
			types.Str(fmt.Sprintf("stratum-%03d", s)),
			types.Str(buckets[s*len(buckets)/strata]),
		})
	}
	db.Finish()
	combined, _, err := exec.JoinedSchema(schema, []*storage.Table{dim})
	if err != nil {
		panic(err)
	}
	spec := exec.JoinSpec{Dim: dim, LeftCol: 0, RightCol: 0}
	joinQ := `SELECT COUNT(*), SUM(v) FROM strat WHERE v < 70 AND bucket <> 'mid' GROUP BY bucket`
	joinPlan, err := compileBench(joinQ, combined)
	if err != nil {
		panic(err)
	}
	measureJoin := func(plan *exec.Plan) float64 {
		in := exec.FromTable(rleTab)
		exec.RunJoinParallel(plan, in, []exec.JoinSpec{spec}, 0.95, 1)
		iters := 0
		start := time.Now()
		for time.Since(start) < window {
			exec.RunJoinParallel(plan, in, []exec.JoinSpec{spec}, 0.95, 1)
			iters++
		}
		return float64(rows) * float64(iters) / time.Since(start).Seconds()
	}
	earlyPlan := *joinPlan
	earlyPlan.Tuning.NoLateMaterialization = true
	if early := measureJoin(&earlyPlan); early > 0 {
		rec.LateMatJoinSpeedup = measureJoin(joinPlan) / early
	}
	return rec
}

// replayBench measures the prepare/execute pipeline on a hot-template
// workload: a Zipf-skewed table (the paper's Conviva-like regime, where
// stratified families actually get built) queried by a template whose
// filter column is NOT stratified — so every cold query probes the
// smallest sample of every family before answering, the §4 cost the plan
// cache amortizes. The same query sequence runs against a cached and an
// uncached engine; answers are asserted bit-identical first, then each
// engine is timed.
func replayBench(smoke bool) replayRecord {
	// Sized so the family probes dominate a cold query (tens of
	// thousands of sample rows scanned per probe pass); at toy sizes
	// fixed per-query overhead (parse, latency pricing) would mask the
	// probe savings. smoke shrinks everything for CI path coverage —
	// the bit-identity gate still runs, but the speedup/hit-rate numbers
	// are not comparable to tracked snapshots.
	rows, sampleK, window := 200000, int64(8000), 2*time.Second
	if smoke {
		rows, sampleK, window = 50000, 2000, 300*time.Millisecond
	}
	// Result cache off on BOTH engines: this record tracks the
	// plan-cache amortization in isolation (resultReplayBench measures
	// the result-cache layer on top).
	build := func(planCache int) *blinkdb.Engine {
		return buildTrafficEngine(rows, sampleK, planCache, -1, false)
	}
	engOn := build(0)   // default: cache on
	engOff := build(-1) // disabled
	// genre is not a stratification column: cold queries probe every family.
	queryFor := func(i int) string {
		genres := []string{"western", "drama", "comedy"}
		return fmt.Sprintf(`SELECT AVG(sessiontime) FROM traffic WHERE genre = '%s' ERROR WITHIN 10%%`, genres[i%3])
	}

	// Equivalence gate: cached answers must match uncached bit for bit.
	for i := 0; i < 6; i++ {
		on, err := engOn.Query(queryFor(i))
		if err != nil {
			panic(err)
		}
		off, err := engOff.Query(queryFor(i))
		if err != nil {
			panic(err)
		}
		if len(on.Rows) != len(off.Rows) {
			panic(fmt.Sprintf("replay bench: cache on/off answers diverge on %q (rows %d vs %d)",
				queryFor(i), len(on.Rows), len(off.Rows)))
		}
		for r := range off.Rows {
			if len(on.Rows[r].Cells) != len(off.Rows[r].Cells) {
				panic(fmt.Sprintf("replay bench: cache on/off answers diverge on %q (row %d cells)", queryFor(i), r))
			}
			for c := range off.Rows[r].Cells {
				if on.Rows[r].Cells[c] != off.Rows[r].Cells[c] {
					panic(fmt.Sprintf("replay bench: cache on/off answers diverge on %q", queryFor(i)))
				}
			}
		}
	}

	measure := func(eng *blinkdb.Engine) (float64, int) {
		iters := 0
		start := time.Now()
		for time.Since(start) < window {
			if _, err := eng.Query(queryFor(iters)); err != nil {
				panic(err)
			}
			iters++
		}
		return float64(iters) / time.Since(start).Seconds(), iters
	}
	rec := replayRecord{Template: `SELECT AVG(sessiontime) FROM traffic WHERE genre = ? ERROR WITHIN 10%`}
	rec.QpsCacheOn, rec.Queries = measure(engOn)
	rec.QpsCacheOff, _ = measure(engOff)
	if rec.QpsCacheOff > 0 {
		rec.Speedup = rec.QpsCacheOn / rec.QpsCacheOff
	}
	rec.HitRate = engOn.Stats().PlanCacheHitRate()
	return rec
}

// buildTrafficEngine loads the Zipf-skewed Conviva-like traffic table
// (the regime where stratified families get built and cold probes are
// expensive) into an engine with explicit cache knobs. Shared by the
// plan-cache and result-cache replay benches so the two records measure
// the same data.
func buildTrafficEngine(rows int, sampleK int64, planCache, resultCache int, disableTelemetry bool) *blinkdb.Engine {
	eng := blinkdb.Open(blinkdb.Config{
		Seed: 11, Scale: 1e4, CacheTables: true,
		PlanCacheSize: planCache, ResultCacheSize: resultCache,
		DisableTelemetry: disableTelemetry,
	})
	load := eng.CreateTable("traffic",
		blinkdb.Col("city", blinkdb.String),
		blinkdb.Col("os", blinkdb.String),
		blinkdb.Col("browser", blinkdb.String),
		blinkdb.Col("country", blinkdb.String),
		blinkdb.Col("device", blinkdb.String),
		blinkdb.Col("genre", blinkdb.String),
		blinkdb.Col("sessiontime", blinkdb.Float),
	)
	rng := rand.New(rand.NewSource(5))
	cityGen := zipf.NewGeneratorCDF(rng, 1.3, 200)
	osGen := zipf.NewGeneratorCDF(rng, 1.3, 40)
	browserGen := zipf.NewGeneratorCDF(rng, 1.3, 60)
	countryGen := zipf.NewGeneratorCDF(rng, 1.3, 80)
	deviceGen := zipf.NewGeneratorCDF(rng, 1.3, 25)
	genres := []string{"western", "drama", "comedy", "news"}
	for i := 0; i < rows; i++ {
		if err := load.Append(
			fmt.Sprintf("city%d", cityGen.Next()),
			fmt.Sprintf("os%d", osGen.Next()),
			fmt.Sprintf("browser%d", browserGen.Next()),
			fmt.Sprintf("country%d", countryGen.Next()),
			fmt.Sprintf("device%d", deviceGen.Next()),
			genres[rng.Intn(len(genres))],
			rng.ExpFloat64()*100,
		); err != nil {
			panic(err)
		}
	}
	if err := load.Close(); err != nil {
		panic(err)
	}
	if _, err := eng.CreateSamples("traffic", blinkdb.SampleOptions{
		BudgetFraction: 1.2,
		K:              sampleK,
		Templates: []blinkdb.Template{
			{Columns: []string{"city"}, Weight: 0.3},
			{Columns: []string{"os"}, Weight: 0.2},
			{Columns: []string{"browser"}, Weight: 0.2},
			{Columns: []string{"country"}, Weight: 0.2},
			{Columns: []string{"device"}, Weight: 0.1},
		},
	}); err != nil {
		panic(err)
	}
	return eng
}

// resultReplayBench measures the result cache on a concurrent Zipf
// replay: fully-bound queries whose constants follow a Zipf law (hot
// genres dominate, like dashboard traffic) are replayed by several
// goroutines. The result-cached engine answers repeats from memory and
// collapses concurrent cold replays via singleflight; the baseline
// engine (result cache off, plan cache on — i.e. PR 4's pipeline)
// re-executes the chosen view scan every time. Answers are asserted
// bit-identical before timing.
func resultReplayBench(smoke bool) resultReplayRecord {
	rows, sampleK, window := 200000, int64(8000), 2*time.Second
	if smoke {
		rows, sampleK, window = 50000, 2000, 300*time.Millisecond
	}
	engOn := buildTrafficEngine(rows, sampleK, 0, 0, false)   // both caches default-on
	engOff := buildTrafficEngine(rows, sampleK, 0, -1, false) // result cache disabled

	// Zipf-distributed constants over the 200-city space: hot cities
	// repeat heavily (result hits) while the long tail keeps surfacing
	// cold bindings throughout the run — and because every goroutine
	// replays the same sequence from the same offset, a cold binding is
	// typically requested by several goroutines at once (the cache
	// stampede singleflight exists for).
	cityGen := zipf.NewGeneratorCDF(rand.New(rand.NewSource(23)), 1.1, 200)
	const replaySize = 1024
	replay := make([]string, replaySize)
	for i := range replay {
		replay[i] = fmt.Sprintf(
			`SELECT AVG(sessiontime) FROM traffic WHERE city = 'city%d' ERROR WITHIN 10%%`,
			cityGen.Next())
	}

	// Equivalence gate: result-cached answers must match the baseline bit
	// for bit — on the caching miss AND on replayed hits (indices repeat).
	for i := 0; i < 12; i++ {
		src := replay[i%8]
		on, err := engOn.Query(src)
		if err != nil {
			panic(err)
		}
		off, err := engOff.Query(src)
		if err != nil {
			panic(err)
		}
		if len(on.Rows) != len(off.Rows) {
			panic(fmt.Sprintf("result replay bench: answers diverge on %q (rows %d vs %d)",
				src, len(on.Rows), len(off.Rows)))
		}
		for r := range off.Rows {
			for c := range off.Rows[r].Cells {
				if on.Rows[r].Cells[c] != off.Rows[r].Cells[c] {
					panic(fmt.Sprintf("result replay bench: answers diverge on %q", src))
				}
			}
		}
	}

	goroutines := 4
	measure := func(eng *blinkdb.Engine) (float64, int) {
		var total atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ { // same offset: stampede the cold tail together
					select {
					case <-stop:
						return
					default:
					}
					if _, err := eng.Query(replay[i%replaySize]); err != nil {
						panic(err)
					}
					total.Add(1)
				}
			}()
		}
		start := time.Now()
		time.Sleep(window)
		close(stop)
		wg.Wait()
		return float64(total.Load()) / time.Since(start).Seconds(), int(total.Load())
	}
	rec := resultReplayRecord{
		Template:   `SELECT AVG(sessiontime) FROM traffic WHERE city = ? ERROR WITHIN 10%`,
		Goroutines: goroutines,
	}
	rec.QpsOn, rec.Queries = measure(engOn)
	rec.QpsOff, _ = measure(engOff)
	if rec.QpsOff > 0 {
		rec.Speedup = rec.QpsOn / rec.QpsOff
	}
	s := engOn.Stats()
	if total := s.ResultCacheHits + s.ResultCacheMisses + s.ResultCacheShared; total > 0 {
		rec.HitRate = float64(s.ResultCacheHits) / float64(total)
		rec.SharedRate = float64(s.ResultCacheShared) / float64(total)
	}
	return rec
}

// telemetryBench prices the telemetry layer on the worst-case path: the
// concurrent Zipf replay of resultReplayBench, where most queries are
// result-cache hits and per-query work is minimal, so fixed telemetry
// cost (one wall-clock read + one histogram Observe per query) is the
// largest fraction of total time it will ever be. Two engines differ only
// in Config.DisableTelemetry; the per-template percentiles come from the
// telemetry-on engine's registry after its timed run.
func telemetryBench(smoke bool) telemetryRecord {
	rows, sampleK, window := 200000, int64(8000), 2*time.Second
	if smoke {
		rows, sampleK, window = 50000, 2000, 300*time.Millisecond
	}
	engOn := buildTrafficEngine(rows, sampleK, 0, 0, false)
	engOff := buildTrafficEngine(rows, sampleK, 0, 0, true)

	// Warm the template with a HOT constant on both engines. The error
	// projection is derived from the template's cached probe, so whichever
	// constant goes cold first determines it: a tail city's stratum is
	// fully sampled (exact probe → projected half-width 0, honestly — the
	// planner believed the answer exact) and would pin the template's
	// predicted-vs-observed ratio at 0 for the whole run. city1's stratum
	// is capped, so its probe carries sampling error and the recorded
	// ratio is the meaningful calibration signal.
	for _, eng := range []*blinkdb.Engine{engOn, engOff} {
		if _, err := eng.Query(`SELECT AVG(sessiontime) FROM traffic WHERE city = 'city1' ERROR WITHIN 10%`); err != nil {
			panic(err)
		}
	}

	cityGen := zipf.NewGeneratorCDF(rand.New(rand.NewSource(23)), 1.1, 200)
	const replaySize = 1024
	replay := make([]string, replaySize)
	for i := range replay {
		replay[i] = fmt.Sprintf(
			`SELECT AVG(sessiontime) FROM traffic WHERE city = 'city%d' ERROR WITHIN 10%%`,
			cityGen.Next())
	}

	goroutines := 4
	measure := func(eng *blinkdb.Engine) float64 {
		var total atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := eng.Query(replay[i%replaySize]); err != nil {
						panic(err)
					}
					total.Add(1)
				}
			}()
		}
		start := time.Now()
		time.Sleep(window)
		close(stop)
		wg.Wait()
		return float64(total.Load()) / time.Since(start).Seconds()
	}
	rec := telemetryRecord{}
	rec.QpsTelemetryOn = measure(engOn)
	rec.QpsTelemetryOff = measure(engOff)
	if rec.QpsTelemetryOff > 0 {
		rec.OverheadFraction = 1 - rec.QpsTelemetryOn/rec.QpsTelemetryOff
	}
	snap := engOn.Telemetry()
	for _, t := range snap.Templates {
		rec.Templates = append(rec.Templates, templateTelemetry{
			Template:                     t.Key,
			Queries:                      t.Queries,
			P50Ms:                        t.Latency.P50 * 1e3,
			P95Ms:                        t.Latency.P95 * 1e3,
			P99Ms:                        t.Latency.P99 * 1e3,
			PredictedOverObservedLatency: t.PredictedOverObservedLatency,
			PredictedOverObservedBound:   t.PredictedOverObservedBound,
		})
	}
	return rec
}

// serverBench drives the HTTP serving layer at 2× its admission capacity
// (see serverRecord). The engine runs with the result cache OFF so every
// admitted session actually scans — with it on nothing queues and nothing
// sheds, which would measure the cache again instead of the server.
func serverBench(smoke bool) serverRecord {
	rows, sampleK, window := 200000, int64(8000), 2*time.Second
	if smoke {
		rows, sampleK, window = 50000, 2000, 300*time.Millisecond
	}
	eng := buildTrafficEngine(rows, sampleK, 0, -1, false)
	srv := server.New(eng, server.Config{Admission: admission.Config{
		MaxConcurrent:     1,
		MaxQueue:          3,
		MaxBacklogSeconds: -1, // bound by seats: the 2× ratio stays exact
	}})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// Warm the template (plan cache + latency calibration, which prices
	// admission for the rest of the run) before the clock starts.
	warm, err := http.Post(hs.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "SELECT AVG(sessiontime) FROM traffic WHERE city = 'city1' ERROR WITHIN 10%"}`))
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()

	cityGen := zipf.NewGeneratorCDF(rand.New(rand.NewSource(23)), 1.1, 200)
	const replaySize = 256
	replay := make([]string, replaySize)
	for i := range replay {
		replay[i] = fmt.Sprintf(
			`{"sql": "SELECT AVG(sessiontime) FROM traffic WHERE city = 'city%d' ERROR WITHIN 10%%", "stream": true}`,
			cityGen.Next())
	}

	// 2× overload: the admission queue seats MaxConcurrent+MaxQueue = 4
	// sessions; 8 always-on clients offer twice that.
	const goroutines = 8
	var mu sync.Mutex
	var ttfa, ttf []float64
	served, shed := 0, 0
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i++ { // staggered offsets: clients mostly miss each other's keys
				select {
				case <-stop:
					return
				default:
				}
				begin := time.Now()
				resp, err := http.Post(hs.URL+"/query", "application/json",
					strings.NewReader(replay[i%replaySize]))
				if err != nil {
					panic(err)
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					mu.Lock()
					shed++
					mu.Unlock()
					continue
				}
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<20)
				first := 0.0
				for sc.Scan() {
					if first == 0 {
						first = time.Since(begin).Seconds()
					}
				}
				final := time.Since(begin).Seconds()
				resp.Body.Close()
				mu.Lock()
				served++
				ttfa = append(ttfa, first)
				ttf = append(ttf, final)
				mu.Unlock()
			}
		}(g)
	}
	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rec := serverRecord{
		Goroutines: goroutines,
		Queries:    served,
		Shed:       shed,
		Qps:        float64(served) / elapsed,
		TTFAP50Ms:  p50(ttfa) * 1e3,
		TTFP50Ms:   p50(ttf) * 1e3,
	}
	if total := served + shed; total > 0 {
		rec.ShedRate = float64(shed) / float64(total)
	}
	return rec
}

// loadgenSpec is the bench's production-shaped mix: an interactive
// error-bounded cohort, a bursty streaming-dashboard cohort, and a
// time-bounded batch cohort, all aimed at the Zipf traffic table.
func loadgenSpec(smoke bool) loadgen.Spec {
	dur := 3 * time.Second
	if smoke {
		dur = 1200 * time.Millisecond
	}
	return loadgen.Spec{
		Seed:     4242,
		Duration: dur,
		Cohorts: []loadgen.Cohort{
			{
				Name: "interactive", SLOClass: "interactive", SLOTargetSeconds: 0.5,
				Clients: 8, RateQPS: 150, RateSkew: 1.1,
				Arrival: loadgen.Poisson,
				Templates: []loadgen.Template{
					{Name: "avg-city", Pattern: "SELECT AVG(sessiontime) FROM traffic WHERE city = 'city%d'",
						Cardinality: 200, Skew: 1.1, Weight: 3},
					{Name: "avg-os", Pattern: "SELECT AVG(sessiontime) FROM traffic WHERE os = 'os%d'",
						Cardinality: 40, Skew: 1.2, Weight: 1},
				},
				Bounds: []loadgen.Bound{
					{ErrorPct: 10, Confidence: 95, Weight: 3},
					{Weight: 1},
				},
				GiveUpSeconds: 2,
			},
			{
				Name: "dashboard", SLOClass: "dashboard", SLOTargetSeconds: 1,
				Clients: 4, RateQPS: 60,
				Arrival: loadgen.Gamma, Burstiness: 4,
				Templates: []loadgen.Template{
					{Name: "avg-country", Pattern: "SELECT AVG(sessiontime) FROM traffic WHERE country = 'country%d'",
						Cardinality: 80, Skew: 1.2, Weight: 1},
				},
				Bounds:         []loadgen.Bound{{ErrorPct: 5, Confidence: 95, Weight: 1}},
				StreamFraction: 1,
			},
			{
				Name: "batch", SLOClass: "batch",
				Clients: 2, RateQPS: 15,
				Arrival: loadgen.Poisson,
				Templates: []loadgen.Template{
					{Name: "avg-browser", Pattern: "SELECT AVG(sessiontime) FROM traffic WHERE browser = 'browser%d'",
						Cardinality: 60, Weight: 1},
				},
				Bounds: []loadgen.Bound{{TimeSeconds: 2, Weight: 1}},
			},
		},
	}
}

// loadgenBench generates the seeded cohort mix, proves the trace
// record/replay determinism contract, then replays the recorded trace
// twice against one capacity-1 server — cold caches, then warm — and
// asserts the serving-path conservation identity before reporting.
func loadgenBench(smoke bool) loadgenRecord {
	rows, sampleK := 200000, int64(8000)
	if smoke {
		rows, sampleK = 50000, int64(2000)
	}
	spec := loadgenSpec(smoke)
	tr := loadgen.Generate(spec)
	wire := tr.Bytes()

	// Determinism contract: regeneration and wire round-trip must both
	// reproduce the recorded stream byte-for-byte. The replay below uses
	// the *read-back* trace, so what drives the server is what replays.
	replayed, err := loadgen.ReadTrace(bytes.NewReader(wire))
	if err != nil {
		panic(fmt.Sprintf("loadgen trace round-trip: %v", err))
	}
	identical := bytes.Equal(replayed.Bytes(), wire) &&
		bytes.Equal(loadgen.Generate(spec).Bytes(), wire)

	// Result cache ON: the warm pass of the same trace then measures the
	// cache-warm serving path against the cold pass's numbers. The
	// backlog is bounded in *predicted* seconds, which is where the
	// cold/warm contrast bites hardest: cold, every template prices at
	// the 0.1s default and bursts shed; warm, the admission EWMA has
	// learned the real per-template costs and the same trace flows
	// through — the paper's priced-admission loop closing in miniature.
	eng := buildTrafficEngine(rows, sampleK, 0, 0, false)
	srv := server.New(eng, server.Config{Admission: admission.Config{
		MaxConcurrent: 1, MaxQueue: 8, MaxBacklogSeconds: 0.15,
	}})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	cold, err := loadgen.Run(replayed, loadgen.RunOptions{BaseURL: hs.URL})
	if err != nil {
		panic(err)
	}
	warm, err := loadgen.Run(replayed, loadgen.RunOptions{BaseURL: hs.URL})
	if err != nil {
		panic(err)
	}

	// Conservation: every dispatched arrival must land in exactly one
	// server-side bucket. Handlers abandoned by impatient clients may
	// still be unwinding, so give the ledger a moment to balance.
	arrivals := int64(cold.Arrivals + warm.Arrivals)
	ok := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		snap := srv.Metrics().Snapshot()
		if snap.Admitted+snap.Shed+snap.QueueCancelled == arrivals {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		snap := srv.Metrics().Snapshot()
		panic(fmt.Sprintf("loadgen conservation violated: admitted %d + shed %d + queueCancelled %d != arrivals %d",
			snap.Admitted, snap.Shed, snap.QueueCancelled, arrivals))
	}

	return loadgenRecord{
		Seed:                 spec.Seed,
		DurationSeconds:      spec.Duration.Seconds(),
		Cohorts:              len(spec.Cohorts),
		TraceRequests:        len(tr.Requests),
		TraceFingerprint:     tr.Fingerprint(),
		TraceReplayIdentical: identical,
		ConservationOK:       ok,
		Cold:                 cold,
		Warm:                 warm,
	}
}

// p50 returns the median of xs (0 when empty).
func p50(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// traceExport captures span trees for a cold query, a warm (result-cache
// hit) replay, and a fresh-constant (plan-cache hit) query, and writes
// them as one Chrome trace-event file — each query gets its own pid lane
// in chrome://tracing / ui.perfetto.dev.
func traceExport(path string, smoke bool) error {
	rows, sampleK := 200000, int64(8000)
	if smoke {
		rows, sampleK = 50000, 2000
	}
	eng := buildTrafficEngine(rows, sampleK, 0, 0, false)
	queries := []string{
		`SELECT AVG(sessiontime) FROM traffic WHERE city = 'city1' ERROR WITHIN 10%`, // cold
		`SELECT AVG(sessiontime) FROM traffic WHERE city = 'city1' ERROR WITHIN 10%`, // result-cache hit
		`SELECT AVG(sessiontime) FROM traffic WHERE city = 'city2' ERROR WITHIN 10%`, // plan-cache hit
	}
	var traces []*telemetry.Trace
	for _, q := range queries {
		_, tr, err := eng.QueryTraced(q)
		if err != nil {
			return err
		}
		traces = append(traces, tr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := telemetry.WriteChrome(f, traces); err != nil {
		return err
	}
	// The CI bench smoke opens the file back up and checks it parses; do
	// it here too so a local run fails loudly on malformed output.
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !json.Valid(data) {
		return fmt.Errorf("exported trace is not valid JSON")
	}
	return nil
}

func compileBench(q string, schema *types.Schema) (*exec.Plan, error) {
	parsed, err := sqlparser.Parse(q)
	if err != nil {
		return nil, err
	}
	return exec.Compile(parsed, schema)
}

// persistenceBench measures the warm-boot win end to end: one engine
// life builds samples cold against a data directory and warms its
// caches, snapshots, dies; a second life boots over the same directory.
// Both lives time the stretch from table-loaded to fully-warm — sample
// stratification + query execution cold, segment load + warmup restore
// + cache-hit replay warm. The table load itself (identical ingest work
// in both lives) stays outside the clock. A second pass times segment
// loading alone, mmap vs the ReadFile fallback.
func persistenceBench(smoke bool) persistenceRecord {
	rows, sampleK, loadIters := 300000, int64(8000), 5
	if smoke {
		rows, sampleK, loadIters = 40000, 2000, 2
	}
	dir, err := os.MkdirTemp("", "blinkdb-bench-persist-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	warmQueries := []string{
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`,
		`SELECT SUM(sessiontime) FROM sessions WHERE os = 'os2' ERROR WITHIN 10%`,
		`SELECT COUNT(sessiontime) FROM sessions WHERE city = 'city3' OR os = 'os1' ERROR WITHIN 15%`,
		`SELECT AVG(sessiontime) FROM sessions WHERE os = 'os1' GROUP BY city ERROR WITHIN 20%`,
	}

	// boot runs one engine life: ingest (untimed), then the timed
	// stretch a restart can win back — CreateSamples (stratify or load),
	// RestoreWarmup, and the warm query set.
	boot := func() (*blinkdb.Engine, *blinkdb.RestoreReport, float64) {
		eng := blinkdb.Open(blinkdb.Config{
			Seed: 11, Scale: 1e4, CacheTables: true, DataDir: dir,
		})
		load := eng.CreateTable("sessions",
			blinkdb.Col("city", blinkdb.String),
			blinkdb.Col("os", blinkdb.String),
			blinkdb.Col("sessiontime", blinkdb.Float),
		)
		rng := rand.New(rand.NewSource(5))
		cityGen := zipf.NewGeneratorCDF(rng, 1.3, 100)
		osGen := zipf.NewGeneratorCDF(rng, 1.3, 20)
		for i := 0; i < rows; i++ {
			if err := load.Append(
				fmt.Sprintf("city%d", cityGen.Next()),
				fmt.Sprintf("os%d", osGen.Next()),
				rng.ExpFloat64()*100,
			); err != nil {
				panic(err)
			}
		}
		if err := load.Close(); err != nil {
			panic(err)
		}
		start := time.Now()
		if _, err := eng.CreateSamples("sessions", blinkdb.SampleOptions{
			BudgetFraction: 1.0,
			K:              sampleK,
			Templates: []blinkdb.Template{
				{Columns: []string{"city"}, Weight: 0.7},
				{Columns: []string{"os"}, Weight: 0.3},
			},
		}); err != nil {
			panic(err)
		}
		rep, err := eng.RestoreWarmup()
		if err != nil {
			panic(err)
		}
		for _, q := range warmQueries {
			if _, err := eng.Query(q); err != nil {
				panic(err)
			}
		}
		return eng, rep, time.Since(start).Seconds()
	}

	// Life 1: cold. Run the query set once more so the snapshot carries
	// steady-state (result-cache-hit) entries, then snapshot and die.
	eng1, _, cold := boot()
	for _, q := range warmQueries {
		if _, err := eng1.Query(q); err != nil {
			panic(err)
		}
	}
	if err := eng1.SnapshotWarmup(blinkdb.WarmupState{}); err != nil {
		panic(err)
	}
	if err := eng1.Close(); err != nil {
		panic(err)
	}

	// Life 2: warm boot over the same directory.
	eng2, rep, warm := boot()
	defer eng2.Close()
	if notes := eng2.PersistenceNotes(); len(notes) != 0 {
		panic(fmt.Sprintf("warm boot was not warm: %v", notes))
	}
	rec := persistenceRecord{
		Rows:            rows,
		ColdBootSeconds: cold,
		WarmBootSeconds: warm,
		WarmBootSpeedup: cold / warm,
	}
	if rep != nil {
		rec.RestoredPlans, rec.RestoredResults = rep.Plans, rep.Results
	}

	// Segment-load throughput: open every persisted sample segment and
	// materialize its tables, mmap vs the ReadFile fallback.
	var segs []string
	filepath.WalkDir(filepath.Join(dir, "samples"), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".seg") {
			segs = append(segs, path)
		}
		return nil
	})
	loadAll := func(open func(string) (*blockfile.Segment, error)) float64 {
		var bytes int64
		start := time.Now()
		for it := 0; it < loadIters; it++ {
			for _, path := range segs {
				seg, err := open(path)
				if err != nil {
					panic(err)
				}
				for i := 0; i < seg.NumTables(); i++ {
					if _, err := seg.Table(i); err != nil {
						panic(err)
					}
				}
				bytes += seg.SizeBytes()
				seg.Close()
			}
		}
		return float64(bytes) / 1e6 / time.Since(start).Seconds()
	}
	for _, path := range segs {
		if st, err := os.Stat(path); err == nil {
			rec.SegmentMB += float64(st.Size()) / 1e6
		}
	}
	rec.MmapLoadMBps = loadAll(blockfile.Open)
	rec.ReadFileLoadMBps = loadAll(blockfile.OpenReadFile)
	return rec
}
