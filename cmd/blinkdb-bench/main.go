// Command blinkdb-bench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated cluster.
//
// Usage:
//
//	blinkdb-bench                  # run every experiment (full size)
//	blinkdb-bench -quick           # reduced dataset sizes
//	blinkdb-bench -run 6c,table5   # run a subset
//	blinkdb-bench -list            # list experiment names
//	blinkdb-bench -rows 200000     # override the Conviva row count
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"blinkdb/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "use reduced dataset sizes")
		run   = flag.String("run", "", "comma-separated experiment names (default: all)")
		list  = flag.Bool("list", false, "list experiments and exit")
		rows  = flag.Int("rows", 0, "override Conviva row count")
		tpch  = flag.Int("tpch-rows", 0, "override TPC-H row count")
		seed  = flag.Int64("seed", 0, "override random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return
	}

	cfg := experiments.Config{}
	if *quick {
		cfg = experiments.Quick()
	}
	if *rows > 0 {
		cfg.ConvivaRows = *rows
	}
	if *tpch > 0 {
		cfg.TPCHRows = *tpch
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	names := map[string]bool{}
	if *run != "" {
		for _, n := range strings.Split(*run, ",") {
			names[strings.TrimSpace(n)] = true
		}
	}

	failed := 0
	for _, e := range experiments.All() {
		if len(names) > 0 && !names[e.Name] {
			continue
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.Name, err)
			failed++
			continue
		}
		fmt.Println(tab)
		fmt.Printf("(%s regenerated in %.1fs)\n\n", e.Name, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
