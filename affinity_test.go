package blinkdb

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// affinityQueries covers exact, error-bounded, time-bounded, grouped and
// disjunctive execution through the public API.
var affinityQueries = []string{
	`SELECT COUNT(*) FROM sessions`,
	`SELECT AVG(sessiontime), MEDIAN(sessiontime) FROM sessions GROUP BY city`,
	`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 5% AT CONFIDENCE 95%`,
	`SELECT COUNT(*) FROM sessions WHERE city = 'SF' GROUP BY os WITHIN 2 SECONDS`,
	`SELECT SUM(sessiontime) FROM sessions WHERE city = 'NY' OR os = 'Linux' ERROR WITHIN 10%`,
	`SELECT COUNT(*) FROM sessions WHERE city = 'Atlantis'`,
}

// TestAffinityEquivalenceEndToEnd is the tentpole's public-API acceptance
// check: engines differing only in Config.Affinity (and worker count)
// return DeepEqual-identical results — estimates, error bars, plan
// decisions, scan counters AND simulated latency, since the cluster model
// prices block placement, not the scheduling knob.
func TestAffinityEquivalenceEndToEnd(t *testing.T) {
	const rows = 30000
	base := Config{Scale: 1e4, Seed: 7, CacheTables: true, Workers: 1}
	want := make([]*Result, len(affinityQueries))
	{
		ref := demoEngineCfg(t, rows, base)
		for i, src := range affinityQueries {
			res, err := ref.Query(src)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			want[i] = res
		}
	}
	for _, workers := range []int{1, 2, 8} {
		for _, aff := range []Affinity{AffinityNode, AffinityBlind} {
			cfg := base
			cfg.Workers = workers
			cfg.Affinity = aff
			eng := demoEngineCfg(t, rows, cfg)
			for i, src := range affinityQueries {
				got, err := eng.Query(src)
				if err != nil {
					t.Fatalf("%q (workers=%d affinity=%d): %v", src, workers, aff, err)
				}
				if !reflect.DeepEqual(want[i], got) {
					t.Errorf("%q: workers=%d affinity=%d diverged from the reference\nwant %+v\ngot  %+v",
						src, workers, aff, want[i], got)
				}
			}
		}
	}
}

// stripPlanCache normalizes the plan- and result-cache outcome markers
// so results can be compared across cold (miss), warm (hit) and
// singleflight (shared) servings — the ANSWER must be bit-identical in
// every case; only the annotations differ.
func stripPlanCache(res *Result) *Result {
	cp := *res
	cp.PlanCache = ""
	cp.ResultCache = ""
	for _, marker := range []string{
		"; cache=hit", "; cache=miss",
		"; result=hit", "; result=miss", "; result=shared",
	} {
		cp.Explanation = strings.ReplaceAll(cp.Explanation, marker, "")
	}
	return &cp
}

// TestConcurrentQuerySmoke hammers one engine from many goroutines — the
// north-star workload is heavy multi-user traffic, and the catalog's
// RWMutex plus the ELP runtime's probe path had no engine-level
// concurrency coverage. Run under -race in CI; every concurrent answer
// must equal the serial one (queries are read-only and deterministic;
// with the default plan cache the serial warm-up is the miss that
// prepares each template and every concurrent replay is a hit, so
// results are compared modulo the cache=hit|miss marker).
func TestConcurrentQuerySmoke(t *testing.T) {
	eng := demoEngine(t, 20000)
	want := make([]*Result, len(affinityQueries))
	for i, src := range affinityQueries {
		res, err := eng.Query(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		want[i] = stripPlanCache(res)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(affinityQueries))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				// Offset the query order per goroutine so different
				// queries overlap in flight.
				for k := range affinityQueries {
					i := (k + g) % len(affinityQueries)
					res, err := eng.Query(affinityQueries[i])
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: %q: %v", g, affinityQueries[i], err)
						return
					}
					if !reflect.DeepEqual(want[i], stripPlanCache(res)) {
						errs <- fmt.Errorf("goroutine %d: %q: concurrent result diverged from serial", g, affinityQueries[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
