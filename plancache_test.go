package blinkdb

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// demoEnginePlanCacheOnly is demoEngine with the result cache disabled,
// so replay expectations (PlanCache = "hit" on every warm query) test
// the plan-cache layer rather than being short-circuited by a
// result-cache hit.
func demoEnginePlanCacheOnly(t testing.TB, rows int) *Engine {
	t.Helper()
	return demoEngineCfg(t, rows, Config{Scale: 1e4, Seed: 7, CacheTables: true, ResultCacheSize: -1})
}

// TestPlanCacheEquivalenceEndToEnd is the public-API acceptance check of
// the prepare/execute tentpole: an engine with the plan cache disabled
// (PlanCacheSize < 0) answers every query bit-identically to main's
// uncached pipeline, and the default cached engine returns the same
// answers — estimates, error bars, scan counters AND simulated latencies
// — for identical queries on miss and on every hit.
func TestPlanCacheEquivalenceEndToEnd(t *testing.T) {
	const rows = 30000
	// Result cache off on BOTH engines: this test pins the plan-cache
	// layer in isolation (the result-cache layering has its own suite in
	// resultcache_test.go).
	base := Config{Scale: 1e4, Seed: 7, CacheTables: true, Workers: 1, ResultCacheSize: -1}

	off := base
	off.PlanCacheSize = -1
	engOff := demoEngineCfg(t, rows, off)
	engOn := demoEngineCfg(t, rows, base)

	for _, src := range affinityQueries {
		want, err := engOff.Query(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if want.PlanCache != "" {
			t.Fatalf("%q: disabled cache must not annotate, got %q", src, want.PlanCache)
		}
		if strings.Contains(want.Explanation, "cache=") {
			t.Fatalf("%q: disabled cache leaked a marker into EXPLAIN: %q", src, want.Explanation)
		}
		// Replaying on the cache-off engine is also bit-identical (no
		// hidden state).
		again, err := engOff.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, again) {
			t.Errorf("%q: cache-off replay diverged", src)
		}
		for rep := 0; rep < 2; rep++ {
			got, err := engOn.Query(src)
			if err != nil {
				t.Fatalf("%q rep %d: %v", src, rep, err)
			}
			wantNote := "hit"
			if rep == 0 {
				wantNote = "miss"
			}
			if got.PlanCache != wantNote {
				t.Errorf("%q rep %d: PlanCache = %q, want %q", src, rep, got.PlanCache, wantNote)
			}
			if !strings.Contains(got.Explanation, "cache="+wantNote) {
				t.Errorf("%q rep %d: EXPLAIN %q missing cache=%s", src, rep, got.Explanation, wantNote)
			}
			if !reflect.DeepEqual(want, stripPlanCache(got)) {
				t.Errorf("%q rep %d (%s): cached engine diverged from cache-off\nwant %+v\ngot  %+v",
					src, rep, wantNote, want, stripPlanCache(got))
			}
		}
	}
	s := engOn.Stats()
	if s.PlanCacheHits == 0 || s.PlanCacheMisses != int64(len(affinityQueries)) {
		t.Errorf("stats: %d hits / %d misses, want >0 / %d", s.PlanCacheHits, s.PlanCacheMisses, len(affinityQueries))
	}
	if off := engOff.Stats(); off.PlanCacheHits != 0 || off.PlanCacheMisses != 0 {
		t.Errorf("disabled cache counted outcomes: %+v", off)
	}
}

// TestPlanCacheHotTemplateThroughput exercises the hot-template serving
// contract end to end: replaying one template is all hits after the
// first query, runs zero additional probes, and answers for NEW
// constants stay correct (computed for those constants, not replayed).
func TestPlanCacheHotTemplateThroughput(t *testing.T) {
	eng := demoEnginePlanCacheOnly(t, 30000)
	template := `SELECT AVG(sessiontime) FROM sessions WHERE genre = '%s' ERROR WITHIN 20%%`

	if _, err := eng.Query(fmt.Sprintf(template, "western")); err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats()
	if cold.ProbeExecs == 0 {
		t.Fatal("cold query should probe (genre is not a stratification column)")
	}
	for i := 0; i < 10; i++ {
		genre := "western"
		if i%2 == 1 {
			genre = "drama"
		}
		res, err := eng.Query(fmt.Sprintf(template, genre))
		if err != nil {
			t.Fatal(err)
		}
		if res.PlanCache != "hit" {
			t.Fatalf("replay %d: PlanCache = %q, want hit", i, res.PlanCache)
		}
	}
	warm := eng.Stats()
	if warm.ProbeExecs != cold.ProbeExecs {
		t.Errorf("hot replays re-probed: %d -> %d", cold.ProbeExecs, warm.ProbeExecs)
	}
	if warm.PlanCacheHits != 10 {
		t.Errorf("hits = %d, want 10", warm.PlanCacheHits)
	}
	if hr := warm.PlanCacheHitRate(); hr < 0.9 {
		t.Errorf("hit rate = %.2f, want ≥ 0.9", hr)
	}

	// The two genres must get different answers (each computed for its
	// own constant) close to their exact values.
	for _, genre := range []string{"western", "drama"} {
		approx, err := eng.Query(fmt.Sprintf(template, genre))
		if err != nil {
			t.Fatal(err)
		}
		exact, err := eng.Query(fmt.Sprintf(`SELECT AVG(sessiontime) FROM sessions WHERE genre = '%s'`, genre))
		if err != nil {
			t.Fatal(err)
		}
		a, x := approx.Rows[0].Cells[0].Value, exact.Rows[0].Cells[0].Value
		if a < 0.7*x || a > 1.3*x {
			t.Errorf("genre %s: cached-template estimate %.2f too far from exact %.2f", genre, a, x)
		}
	}
}

// TestPlanCacheInvalidationOnRefresh: after RefreshSamples, a cached
// template must re-prepare (epoch bump observed) — never serve probes
// from the replaced sample.
func TestPlanCacheInvalidationOnRefresh(t *testing.T) {
	eng := demoEnginePlanCacheOnly(t, 20000)
	const src = `SELECT AVG(sessiontime) FROM sessions WHERE genre = 'western' ERROR WITHIN 20%`

	if _, err := eng.Query(src); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCache != "hit" {
		t.Fatalf("warm query should hit, got %q", res.PlanCache)
	}

	if _, ok, err := eng.RefreshSamples("sessions"); err != nil || !ok {
		t.Fatalf("refresh: ok=%v err=%v", ok, err)
	}
	before := eng.Stats()
	res, err = eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCache != "miss" {
		t.Fatalf("post-refresh query served stale plan: %q, want miss", res.PlanCache)
	}
	after := eng.Stats()
	if after.Prepares == before.Prepares || after.ProbeExecs == before.ProbeExecs {
		t.Error("post-refresh query must re-prepare and re-probe")
	}
	// And the re-prepared template is cached again.
	res, err = eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCache != "hit" {
		t.Errorf("re-prepared template should hit, got %q", res.PlanCache)
	}
}

// TestPlanCacheInvalidationOnMaintain: a Maintain pass that rebuilds a
// family (forced re-solve under a changed workload) must invalidate
// cached templates the same way.
func TestPlanCacheInvalidationOnMaintain(t *testing.T) {
	eng := demoEnginePlanCacheOnly(t, 20000)
	const src = `SELECT AVG(sessiontime) FROM sessions WHERE genre = 'western' ERROR WITHIN 20%`
	if _, err := eng.Query(src); err != nil {
		t.Fatal(err)
	}
	if res, _ := eng.Query(src); res.PlanCache != "hit" {
		t.Fatalf("warm query should hit")
	}

	rep, err := eng.Maintain("sessions", MaintainOptions{
		Templates: []Template{{Columns: []string{"genre"}, Weight: 1}},
		Force:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved || (len(rep.Built) == 0 && len(rep.Dropped) == 0) {
		t.Fatalf("forced maintain under a new workload should rebuild families: %+v", rep)
	}
	res, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCache != "miss" {
		t.Errorf("post-maintain query served stale plan: %q, want miss", res.PlanCache)
	}
}
